"""In-flight anomaly detection: deterministic run-health watchdogs.

Every detector in the repo so far — ``repro analyze``'s skew and heap
audits, the critical-path and what-if layers — runs post hoc on a
finished journal: a heap breach or a straggler collapse is explained
only after the run has died. This module runs the same deterministic
math *online*, against the journal record stream as the
:class:`~repro.observability.live.TelemetrySink` tees it past, and
journals each finding as a typed ``anomaly`` event the moment its
inputs exist:

* ``straggler_onset`` — per-phase task-duration statistics (the exact
  :class:`~repro.observability.analyze.DurationStats` math) crossing a
  max/p50 ratio threshold;
* ``skew_drift`` — reduce-bucket record imbalance drifting past a
  multiple of the *run's own* first-seen baseline for the same job
  family;
* ``heap_breach_predicted`` — the paper's Figure-2 reducer-heap model
  projected forward: scale the family's last observed per-key heap
  high-water by the just-finished map phase's output growth, and fire
  *before the reduce phase runs* when the projection exceeds the
  usable heap the latest Section-3.2 ``strategy_decision`` recorded;
* ``cost_model_drift`` — the journalled per-phase seconds diverging
  from the cost model's LPT/shuffle predictions (the ``repro analyze``
  residual math) by more than a relative threshold;
* ``fault_storm`` — fault-tolerance events (retries, lost blocks and
  nodes, failovers) clustering inside one simulated-time window.

Determinism contract
--------------------

Detector inputs are simulated quantities only — task ``sim_seconds``,
counters, span attributes, the simulated clock — never wall time, so
journals recorded with detectors enabled stay byte-identical across
the executor-backend × data-plane matrix. Emission rides the journal's
own re-entrant sequence numbering: an anomaly fired while record *n*
is being sunk lands at sequence *n+1*, immediately after its trigger,
with the parent span the journal's nesting stack held at that instant
(for a phase ``span_end`` trigger that is the enclosing job — which is
how a heap-breach prediction lands *between* map and reduce).

Because every input and the emission discipline are deterministic,
re-running the detectors over a finished journal must re-derive every
live-emitted event exactly — sequence numbers, parents, attributes.
:func:`reconcile_anomalies` enforces that invariant (the CLI's
``repro anomalies JOURNAL --check``), making anomaly events part of
the repo's exact-accounting contract rather than advisory log lines.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields

from repro.common.errors import ConfigurationError
from repro.mapreduce.cluster import MIB
from repro.mapreduce.costmodel import CostParameters, makespan
from repro.mapreduce.counters import Counters, FRAMEWORK_GROUP, MRCounter
from repro.observability.analyze import DurationStats
from repro.observability.journal import (
    EVENT,
    JOB,
    PHASE,
    SPAN_END,
    SPAN_START,
    TASK,
    canonical_record,
)

#: Environment variable carrying the anomaly-detector spec (the CLI's
#: ``--anomaly`` flag writes it); unset/empty/off means detectors off.
ANOMALY_ENV = "REPRO_ANOMALY"

#: Journal event names the watchdog emits.
ANOMALY = "anomaly"
ANOMALY_CONFIG = "anomaly_config"

#: Anomaly types, in the order the detectors evaluate.
STRAGGLER_ONSET = "straggler_onset"
SKEW_DRIFT = "skew_drift"
HEAP_BREACH_PREDICTED = "heap_breach_predicted"
COST_MODEL_DRIFT = "cost_model_drift"
FAULT_STORM = "fault_storm"
ANOMALY_TYPES = (
    STRAGGLER_ONSET,
    SKEW_DRIFT,
    HEAP_BREACH_PREDICTED,
    COST_MODEL_DRIFT,
    FAULT_STORM,
)

#: Fault-tolerance event names that count toward a fault storm. All are
#: journalled from simulated fault draws, so storm windows are as
#: deterministic as everything else.
FAULT_STORM_EVENTS = (
    "job_retry",
    "task_attempt_failures",
    "blocks_lost",
    "replica_failover",
    "node_lost",
    "tasks_rescheduled",
)

_SPEC_ON = ("1", "true", "yes", "on")
_SPEC_OFF = ("", "0", "false", "no", "off")

#: Job names carry their iteration suffix (``TestClusters-i3``,
#: ``KMeans-i2s1``); the family is the name with that suffix stripped,
#: so baselines learned in one iteration apply to the next.
_FAMILY_SUFFIX = re.compile(r"-i\d+(s\d+)?$")


def job_family(name: str) -> str:
    """The job name minus its per-iteration suffix."""
    return _FAMILY_SUFFIX.sub("", name or "")


@dataclass(frozen=True)
class AnomalyConfig:
    """Detector thresholds (all comparisons are strict ``>``).

    The defaults are deliberately conservative — a clean seeded run
    fires nothing — and every knob is overridable from the ``--anomaly``
    spec so chaos demos and tests can arm tighter trip-wires.
    """

    #: Fire ``straggler_onset`` when a phase's max/p50 task-duration
    #: ratio exceeds this (analyze's ``straggler_ratio``), given at
    #: least ``straggler_min_tasks`` tasks to make the p50 meaningful.
    straggler_ratio: float = 4.0
    straggler_min_tasks: int = 4
    #: Fire ``skew_drift`` when a reduce phase's bucket-record
    #: imbalance (max/mean) exceeds this multiple of the first
    #: imbalance seen for the same job family.
    skew_factor: float = 2.0
    #: Fire ``heap_breach_predicted`` when the projected per-key
    #: reducer heap exceeds this fraction of the strategy layer's
    #: usable heap.
    heap_fraction: float = 1.0
    #: Fire ``cost_model_drift`` when |recorded - predicted| / recorded
    #: for a phase exceeds this.
    residual_threshold: float = 0.25
    #: Fire ``fault_storm`` when at least ``storm_events`` fault events
    #: land inside one ``storm_window_seconds`` window of simulated time.
    storm_window_seconds: float = 60.0
    storm_events: int = 8

    def __post_init__(self) -> None:
        for name in (
            "straggler_ratio",
            "skew_factor",
            "heap_fraction",
            "residual_threshold",
            "storm_window_seconds",
        ):
            if not getattr(self, name) > 0:
                raise ConfigurationError(
                    f"anomaly threshold {name} must be positive, "
                    f"got {getattr(self, name)!r}"
                )
        for name in ("straggler_min_tasks", "storm_events"):
            if getattr(self, name) < 1:
                raise ConfigurationError(
                    f"anomaly threshold {name} must be at least 1, "
                    f"got {getattr(self, name)!r}"
                )

    def as_dict(self) -> dict:
        """JSON-ready thresholds (the ``anomaly_config`` event attrs)."""
        return {
            field.name: getattr(self, field.name) for field in fields(self)
        }

    @classmethod
    def from_dict(cls, attrs: dict) -> "AnomalyConfig":
        """Rebuild a config from journalled ``anomaly_config`` attrs.

        Unknown keys are ignored (a newer journal read by older code
        still reconciles the detectors both sides know about).
        """
        known = {field.name: field.type for field in fields(cls)}
        kwargs = {}
        for key, value in (attrs or {}).items():
            if key not in known:
                continue
            kwargs[key] = (
                int(value) if key in ("straggler_min_tasks", "storm_events")
                else float(value)
            )
        return cls(**kwargs)


def parse_anomaly_spec(spec: "str | None") -> "AnomalyConfig | None":
    """Parse a ``--anomaly`` / ``$REPRO_ANOMALY`` spec.

    ``""``/``"off"``/``"0"`` → ``None`` (detectors off); ``"1"``/``"on"``
    → defaults; otherwise a comma-separated ``knob=value`` list over
    the :class:`AnomalyConfig` fields, e.g.
    ``"straggler_ratio=1.5,storm_events=3"``.
    """
    text = (spec or "").strip().lower()
    if text in _SPEC_OFF:
        return None
    if text in _SPEC_ON:
        return AnomalyConfig()
    known = {field.name for field in fields(AnomalyConfig)}
    overrides: dict = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ConfigurationError(
                f"anomaly spec chunk {chunk!r} is not of the form knob=value"
            )
        name, _, raw = chunk.partition("=")
        name = name.strip()
        if name not in known:
            raise ConfigurationError(
                f"unknown anomaly knob {name!r}; choose from "
                + ", ".join(sorted(known))
            )
        if name in overrides:
            raise ConfigurationError(f"duplicate anomaly knob {name!r}")
        try:
            value = (
                int(raw.strip())
                if name in ("straggler_min_tasks", "storm_events")
                else float(raw.strip())
            )
        except ValueError:
            raise ConfigurationError(
                f"anomaly knob {name} has a non-numeric value {raw.strip()!r}"
            ) from None
        overrides[name] = value
    return AnomalyConfig(**overrides)


class AnomalyDetectors:
    """The pure detection engine: journal records in, firings out.

    :meth:`consume` folds one record into the detector state and
    returns the anomaly attribute dicts that record triggers, in
    evaluation order. The engine holds no journal reference and emits
    nothing itself — the same instance class drives both the live
    :class:`AnomalyWatchdog` and offline reconciliation, which is what
    makes ``repro anomalies --check`` an exact re-derivation rather
    than a best-effort comparison.
    """

    def __init__(self, config: "AnomalyConfig | None" = None):
        self.config = config if config is not None else AnomalyConfig()
        self._params = CostParameters()
        self._span_kind: dict = {}
        self._span_name: dict = {}
        self._span_parent: dict = {}
        self._phase_tasks: dict = {}
        self._phase_slots: dict = {}
        self._job_phases: dict = {}
        self._job_map_records: dict = {}
        self._heap_baseline: dict = {}
        self._skew_baseline: dict = {}
        self._skew_fired: set = set()
        self._usable_heap: "int | None" = None
        self._sim_clock = 0.0
        self._storm_counts: dict = {}
        self._storm_fired: set = set()

    # -- ingestion -------------------------------------------------------

    def consume(self, record: dict) -> "list[dict]":
        """Fold one journal record in; return the anomalies it fires."""
        rtype = record.get("type")
        if rtype == SPAN_START:
            return self._on_start(record)
        if rtype == SPAN_END:
            return self._on_end(record)
        if rtype == TASK:
            return self._on_task(record)
        if rtype == EVENT:
            return self._on_event(record)
        return []

    def _on_start(self, record: dict) -> "list[dict]":
        span = record.get("span")
        kind = record.get("kind")
        attrs = record.get("attrs") or {}
        self._span_kind[span] = kind
        self._span_name[span] = record.get("name", "")
        self._span_parent[span] = record.get("parent")
        if kind == JOB:
            self._job_phases[span] = []
        elif kind == PHASE:
            self._phase_tasks[span] = []
            self._phase_slots[span] = int(attrs.get("slots") or 1)
            parent = record.get("parent")
            if parent in self._job_phases:
                self._job_phases[parent].append(span)
        return []

    def _on_task(self, record: dict) -> "list[dict]":
        parent = record.get("parent")
        if self._span_kind.get(parent) == PHASE:
            self._phase_tasks[parent].append(
                float(record.get("sim_seconds") or 0.0)
            )
        return []

    def _on_event(self, record: dict) -> "list[dict]":
        name = record.get("name", "")
        if name in (ANOMALY, ANOMALY_CONFIG):
            # Never feed the detectors their own output.
            return []
        attrs = record.get("attrs") or {}
        if name == "strategy_decision":
            usable = attrs.get("usable_heap_bytes")
            if usable is not None:
                self._usable_heap = int(usable)
            return []
        if name == "checkpoint_restore":
            # A resumed run inherits the baseline's simulated time; the
            # storm clock must advance with it, exactly as the live
            # aggregate's totals do.
            self._sim_clock += float(attrs.get("simulated_seconds") or 0.0)
            return []
        if name in FAULT_STORM_EVENTS:
            cfg = self.config
            window = int(self._sim_clock // cfg.storm_window_seconds)
            count = self._storm_counts.get(window, 0) + 1
            self._storm_counts[window] = count
            if count == cfg.storm_events and window not in self._storm_fired:
                self._storm_fired.add(window)
                return [
                    {
                        "anomaly": FAULT_STORM,
                        "window": window,
                        "window_seconds": cfg.storm_window_seconds,
                        "events": count,
                        "threshold": cfg.storm_events,
                        "simulated_seconds": self._sim_clock,
                        "trigger": name,
                    }
                ]
        return []

    def _on_end(self, record: dict) -> "list[dict]":
        span = record.get("span")
        kind = self._span_kind.get(span)
        attrs = record.get("attrs") or {}
        if kind == PHASE:
            return self._on_phase_end(span, attrs)
        if kind == JOB:
            return self._on_job_end(span, attrs)
        return []

    # -- detectors -------------------------------------------------------

    def _on_phase_end(self, span, attrs: dict) -> "list[dict]":
        cfg = self.config
        phase = self._span_name.get(span, "")
        job_span = self._span_parent.get(span)
        job_name = self._span_name.get(job_span, "")
        family = job_family(job_name)
        firings: list[dict] = []
        # (1) straggler onset: analyze.DurationStats over the phase's
        # journalled task durations, the instant the phase closes.
        seconds = self._phase_tasks.get(span) or []
        if len(seconds) >= cfg.straggler_min_tasks:
            stats = DurationStats.from_seconds(seconds)
            if stats is not None and stats.straggler_ratio > cfg.straggler_ratio:
                firings.append(
                    {
                        "anomaly": STRAGGLER_ONSET,
                        "job": job_name,
                        "phase": phase,
                        "tasks": stats.count,
                        "p50_seconds": stats.p50_seconds,
                        "p95_seconds": stats.p95_seconds,
                        "max_seconds": stats.max_seconds,
                        "straggler_ratio": stats.straggler_ratio,
                        "threshold": cfg.straggler_ratio,
                    }
                )
        if phase == "map":
            records_out = attrs.get("map_output_records")
            if records_out is not None:
                records_out = int(records_out)
                self._job_map_records[job_span] = records_out
                # (3) Figure-2 heap breach, predicted *before* the
                # reduce phase: project the family's last observed
                # per-key heap high-water by this map phase's output
                # growth and compare against the usable heap the
                # strategy decision recorded.
                baseline = self._heap_baseline.get(family)
                usable = self._usable_heap
                if baseline and usable and baseline[0] > 0:
                    base_records, base_heap = baseline
                    projected = base_heap * (records_out / base_records)
                    limit = cfg.heap_fraction * usable
                    if projected > limit:
                        firings.append(
                            {
                                "anomaly": HEAP_BREACH_PREDICTED,
                                "job": job_name,
                                "family": family,
                                "map_output_records": records_out,
                                "baseline_map_output_records": base_records,
                                "baseline_max_key_heap_bytes": base_heap,
                                "projected_heap_bytes": projected,
                                "usable_heap_bytes": usable,
                                "heap_fraction": cfg.heap_fraction,
                            }
                        )
        elif phase == "reduce":
            bucket_records = attrs.get("bucket_records")
            if bucket_records:
                total = 0
                for count in bucket_records:
                    total += int(count)
                if total > 0:
                    # (2) skew drift vs the run's own baseline: max/mean
                    # bucket imbalance, first occurrence per family sets
                    # the bar.
                    imbalance = (
                        max(int(c) for c in bucket_records)
                        * len(bucket_records)
                        / total
                    )
                    baseline = self._skew_baseline.get(family)
                    if baseline is None:
                        self._skew_baseline[family] = imbalance
                    elif (
                        family not in self._skew_fired
                        and baseline > 0
                        and imbalance > cfg.skew_factor * baseline
                    ):
                        self._skew_fired.add(family)
                        firings.append(
                            {
                                "anomaly": SKEW_DRIFT,
                                "job": job_name,
                                "family": family,
                                "imbalance": imbalance,
                                "baseline_imbalance": baseline,
                                "drift": imbalance / baseline,
                                "threshold": cfg.skew_factor,
                            }
                        )
            max_heap = attrs.get("max_key_heap_bytes")
            map_records = self._job_map_records.get(job_span)
            if max_heap and map_records:
                self._heap_baseline[family] = (map_records, int(max_heap))
        return firings

    def _on_job_end(self, span, attrs: dict) -> "list[dict]":
        cfg = self.config
        firings: list[dict] = []
        job_name = self._span_name.get(span, "")
        if attrs.get("status") == "ok":
            # (4) cost-model residual drift: the analyze residual math
            # (LPT makespan over journalled task durations, shuffle
            # bandwidth over the shuffle-byte counter) at job close.
            timing = attrs.get("timing") or {}
            attempt = None
            checks: list[tuple[str, float, float]] = []
            for phase_span in self._job_phases.get(span, ()):
                phase = self._span_name.get(phase_span, "")
                tasks = self._phase_tasks.get(phase_span) or []
                recorded = float(timing.get(f"{phase}_seconds") or 0.0)
                if not tasks or recorded <= 0:
                    continue
                predicted = makespan(tasks, self._phase_slots.get(phase_span, 1))
                checks.append((phase, predicted, recorded))
            nodes = attrs.get("nodes")
            shuffle_recorded = float(timing.get("shuffle_seconds") or 0.0)
            shuffle_bytes = Counters.from_dict(attrs.get("counters") or {}).get(
                FRAMEWORK_GROUP, MRCounter.SHUFFLE_BYTES
            )
            if nodes and shuffle_recorded > 0:
                predicted = shuffle_bytes / (
                    self._params.network_mbps_per_node * int(nodes) * MIB
                )
                checks.append(("shuffle", predicted, shuffle_recorded))
            for phase, predicted, recorded in checks:
                residual = (recorded - predicted) / recorded
                if abs(residual) > cfg.residual_threshold:
                    firings.append(
                        {
                            "anomaly": COST_MODEL_DRIFT,
                            "job": job_name,
                            "phase": phase,
                            "predicted_seconds": predicted,
                            "recorded_seconds": recorded,
                            "residual": residual,
                            "threshold": cfg.residual_threshold,
                        }
                    )
            # (5)'s clock advances exactly as replay accounting does:
            # successful attempts only, plus restored baselines.
            self._sim_clock += float(attrs.get("simulated_seconds") or 0.0)
        # The span is closed; drop its detector state so a long chained
        # run holds a bounded working set.
        for phase_span in self._job_phases.pop(span, ()):
            self._phase_tasks.pop(phase_span, None)
            self._phase_slots.pop(phase_span, None)
            self._span_kind.pop(phase_span, None)
            self._span_name.pop(phase_span, None)
            self._span_parent.pop(phase_span, None)
        self._job_map_records.pop(span, None)
        return firings


class AnomalyWatchdog:
    """The live half: observes the telemetry tee, emits journal events.

    Bound to the journal whose sink feeds it, so each firing is
    emitted back *through the same journal* — re-entrantly, while the
    triggering record is still being sunk — and lands at the very next
    sequence number under the span the journal's stack holds at that
    instant. One ``anomaly_config`` event (the active thresholds) is
    emitted after the first record so a finished journal carries
    everything reconciliation needs.
    """

    def __init__(self, journal, config: "AnomalyConfig | None" = None):
        self.journal = journal
        self.config = config if config is not None else AnomalyConfig()
        self.engine = AnomalyDetectors(self.config)
        #: Every anomaly attrs dict emitted so far, in firing order.
        self.fired: "list[dict]" = []
        self._config_emitted = False
        self._emitting = False

    def observe_record(self, record: dict) -> None:
        """Feed one teed record through the detectors; emit firings."""
        if self._emitting:
            # Our own nested emission coming back through the sink.
            return
        pending: "list[tuple[str, dict]]" = []
        if not self._config_emitted:
            self._config_emitted = True
            pending.append((ANOMALY_CONFIG, self.config.as_dict()))
        pending.extend(
            (ANOMALY, attrs) for attrs in self.engine.consume(record)
        )
        if not pending:
            return
        self._emitting = True
        try:
            for name, attrs in pending:
                if name == ANOMALY:
                    self.fired.append(dict(attrs))
                self.journal.event(name, **attrs)
        finally:
            self._emitting = False


def anomaly_watchdog_for(journal) -> "AnomalyWatchdog | None":
    """The anomaly watchdog on a journal's sink, if telemetry armed one."""
    if journal is None or not getattr(journal, "enabled", False):
        return None
    return getattr(journal.sink, "anomaly", None)


# -- offline detection and exact reconciliation ---------------------------


def recorded_anomaly_config(records) -> "AnomalyConfig | None":
    """The config the run's watchdog journalled, if detectors were on."""
    for record in records:
        if (
            record.get("type") == EVENT
            and record.get("name") == ANOMALY_CONFIG
        ):
            return AnomalyConfig.from_dict(record.get("attrs") or {})
    return None


def detect_anomalies(
    records, config: "AnomalyConfig | None" = None
) -> "list[dict]":
    """Post-hoc detection: run the engine over a finished journal.

    Returns the anomaly attrs dicts the detectors derive, in order.
    Any ``anomaly``/``anomaly_config`` events already in the journal
    are skipped, so running this over a watchdog-recorded journal
    yields exactly the firings the run emitted live.
    """
    if config is None:
        config = recorded_anomaly_config(records) or AnomalyConfig()
    engine = AnomalyDetectors(config)
    found: list[dict] = []
    for record in records:
        found.extend(engine.consume(record))
    return found


@dataclass(frozen=True)
class AnomalyReconciliation:
    """Outcome of re-deriving a journal's anomaly events offline."""

    #: Canonical event records the replayed detectors derived.
    expected: "list[dict]"
    #: Canonical ``anomaly``/``anomaly_config`` records the journal holds.
    recorded: "list[dict]"
    #: Human-readable discrepancies; empty means exact agreement.
    mismatches: "list[str]"
    #: The thresholds reconciliation ran with (journal's own config).
    config: "AnomalyConfig | None"

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "expected_events": len(self.expected),
            "recorded_events": len(self.recorded),
            "mismatches": list(self.mismatches),
            "config": self.config.as_dict() if self.config else None,
        }


def reconcile_anomalies(
    records, config: "AnomalyConfig | None" = None
) -> AnomalyReconciliation:
    """Re-derive a journal's anomaly events and demand exact agreement.

    Walks the records in sequence order, simulating the journal's
    emission discipline — on a ``span_end`` the nesting stack pops
    *before* the record is sunk, on a ``span_start`` it pushes *after*
    — so every derived event carries the exact parent and sequence
    number the live watchdog's nested emission produced. A recorded
    anomaly the detectors don't derive, a derived anomaly the journal
    lacks, or any field-level difference (sequence, parent, attrs) is
    a mismatch.
    """
    if config is None:
        config = recorded_anomaly_config(records)
    # A journal with no anomaly_config event (and no explicit config
    # from the caller) was recorded with the detectors off: nothing is
    # derived, so it reconciles trivially — unless it holds forged
    # anomaly records, which then mismatch, the right verdict for a
    # journal the watchdog never saw.
    armed = config is not None
    cfg = config if config is not None else AnomalyConfig()
    engine = AnomalyDetectors(cfg)
    stack: list = []
    expected: list[dict] = []
    recorded: list[dict] = []
    mismatches: list[str] = []
    pending: list[dict] = []
    emitted_config = not armed
    for record in records:
        rtype = record.get("type")
        if rtype == EVENT and record.get("name") in (ANOMALY, ANOMALY_CONFIG):
            got = canonical_record(record)
            recorded.append(got)
            if not pending:
                mismatches.append(
                    f"seq {record.get('seq')}: journal holds a "
                    f"{record.get('name')} event the replayed detectors "
                    "did not derive"
                )
                continue
            want = pending.pop(0)
            if got != want:
                mismatches.append(
                    f"seq {record.get('seq')}: recorded "
                    f"{record.get('name')} event differs from the "
                    f"derived one (recorded {got!r}, derived {want!r})"
                )
            continue
        for want in pending:
            mismatches.append(
                f"derived {want['name']} event (seq {want.get('seq')}) "
                "is missing from the journal"
            )
        pending.clear()
        if rtype == SPAN_END:
            span = record.get("span")
            if span in stack:
                while stack and stack[-1] != span:
                    stack.pop()
                if stack:
                    stack.pop()
        firings: list[tuple[str, dict]] = []
        if not emitted_config:
            emitted_config = True
            firings.append((ANOMALY_CONFIG, cfg.as_dict()))
        derived = engine.consume(record)
        if armed:
            firings.extend((ANOMALY, attrs) for attrs in derived)
        seq = record.get("seq")
        parent = stack[-1] if stack else None
        for offset, (name, attrs) in enumerate(firings, start=1):
            derived = {
                "type": EVENT,
                "name": name,
                "parent": parent,
                "attrs": attrs,
                "seq": seq + offset if isinstance(seq, int) else None,
            }
            expected.append(derived)
            pending.append(derived)
        if rtype == SPAN_START:
            stack.append(record.get("span"))
    for want in pending:
        mismatches.append(
            f"derived {want['name']} event (seq {want.get('seq')}) "
            "is missing from the journal"
        )
    return AnomalyReconciliation(
        expected=expected,
        recorded=recorded,
        mismatches=mismatches,
        config=config,
    )


# -- text rendering (the ``repro anomalies`` command) ----------------------


def _describe_anomaly(attrs: dict) -> str:
    kind = attrs.get("anomaly", "unknown")
    if kind == STRAGGLER_ONSET:
        return (
            f"{attrs.get('job')}/{attrs.get('phase')}: slowest task "
            f"{float(attrs.get('straggler_ratio') or 0.0):.2f}x the median "
            f"over {attrs.get('tasks')} tasks "
            f"(threshold {float(attrs.get('threshold') or 0.0):g})"
        )
    if kind == SKEW_DRIFT:
        return (
            f"{attrs.get('job')}: reduce-bucket imbalance "
            f"{float(attrs.get('imbalance') or 0.0):.2f} is "
            f"{float(attrs.get('drift') or 0.0):.2f}x the "
            f"{attrs.get('family')} baseline "
            f"(threshold {float(attrs.get('threshold') or 0.0):g}x)"
        )
    if kind == HEAP_BREACH_PREDICTED:
        return (
            f"{attrs.get('job')}: projected per-key reducer heap "
            f"{float(attrs.get('projected_heap_bytes') or 0.0):,.0f} B "
            f"exceeds {float(attrs.get('heap_fraction') or 0.0):g}x usable "
            f"{int(attrs.get('usable_heap_bytes') or 0):,d} B "
            "(before the reduce phase ran)"
        )
    if kind == COST_MODEL_DRIFT:
        return (
            f"{attrs.get('job')}/{attrs.get('phase')}: recorded "
            f"{float(attrs.get('recorded_seconds') or 0.0):.3f}s vs "
            f"predicted {float(attrs.get('predicted_seconds') or 0.0):.3f}s "
            f"(residual {float(attrs.get('residual') or 0.0):+.2%})"
        )
    if kind == FAULT_STORM:
        return (
            f"window {attrs.get('window')} "
            f"({float(attrs.get('window_seconds') or 0.0):g}s of simulated "
            f"time): {attrs.get('events')} fault events "
            f"(threshold {attrs.get('threshold')}; last: "
            f"{attrs.get('trigger')})"
        )
    return repr(attrs)


def render_anomalies(
    anomalies: "list[dict]", config: "AnomalyConfig | None" = None
) -> str:
    """Human-readable report of detector firings, one line each."""
    lines = [f"anomalies: {len(anomalies)} firing(s)"]
    if config is not None:
        knobs = ", ".join(
            f"{key}={value:g}" for key, value in config.as_dict().items()
        )
        lines.append(f"  thresholds: {knobs}")
    counts: dict[str, int] = {}
    for attrs in anomalies:
        kind = str(attrs.get("anomaly", "unknown"))
        counts[kind] = counts.get(kind, 0) + 1
    if counts:
        summary = ", ".join(f"{kind} x{n}" for kind, n in sorted(counts.items()))
        lines.append(f"  by type: {summary}")
    for attrs in anomalies:
        kind = str(attrs.get("anomaly", "unknown"))
        lines.append(f"  [{kind}] {_describe_anomaly(attrs)}")
    return "\n".join(lines)


def render_reconciliation(outcome: AnomalyReconciliation) -> str:
    """Human-readable verdict of :func:`reconcile_anomalies`."""
    lines = []
    if outcome.ok:
        lines.append(
            f"anomaly reconciliation: OK — {len(outcome.recorded)} recorded "
            "event(s) re-derived exactly"
        )
    else:
        lines.append(
            f"anomaly reconciliation: FAILED — "
            f"{len(outcome.mismatches)} mismatch(es) "
            f"({len(outcome.expected)} derived vs "
            f"{len(outcome.recorded)} recorded)"
        )
        for mismatch in outcome.mismatches:
            lines.append(f"  - {mismatch}")
    if outcome.config is None:
        lines.append(
            "  (journal carries no anomaly_config event: the run did not "
            "arm the detectors)"
        )
    return "\n".join(lines)
