"""The structured run journal: hierarchical spans over an append-only
JSON-lines event stream.

The cost model can say how long a chained G-means run *should* take;
the journal records what one run actually *did* — every job attempt
(including the retried ones), every map/shuffle/reduce phase, every
task, every fault-tolerance event (task failures, job retries, replica
failovers, checkpoint writes and restores) — as a flat sequence of
JSON-serialisable records that :mod:`repro.observability.replay` can
reconstruct into a span tree long after the run's Python objects are
gone.

Span hierarchy::

    run                 one algorithm fit (gmeans / xmeans / multi_kmeans)
    └── iteration       one algorithm round
        └── job         one MapReduce job *attempt* (retries are siblings)
            └── phase   map / reduce
                └── task    one map or reduce task (a single record)

Determinism contract
--------------------

Journal emission happens in the submitting process only, in the same
deterministic order on every backend, and never touches an RNG stream:

* results are byte-identical with the journal on or off;
* journals recorded on the ``serial``, ``threads`` and ``processes``
  backends are identical *modulo wall-clock fields* — every
  nondeterministic value lives in a key starting with ``wall``, and
  :func:`canonical_records` strips exactly those keys.

The journal is off by default (a :class:`NullJournalSink` whose every
emission is a single early return); ``--journal PATH`` or
``$REPRO_JOURNAL`` opts a whole run in.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Iterable, Iterator, Protocol, runtime_checkable

#: Environment variable holding the journal file path (the CLI's
#: ``--journal`` flag writes it); unset or empty means journalling off.
JOURNAL_ENV = "REPRO_JOURNAL"

#: Record types emitted by :class:`Journal`.
SPAN_START = "span_start"
SPAN_END = "span_end"
TASK = "task"
EVENT = "event"

#: Span kinds, outermost first (see the module docstring).
RUN = "run"
ITERATION = "iteration"
JOB = "job"
PHASE = "phase"
SPAN_KINDS = (RUN, ITERATION, JOB, PHASE)


def _jsonable(value):
    """Coerce numpy scalars (and other oddballs) into plain JSON types."""
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (bytes, str)):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


@runtime_checkable
class JournalSink(Protocol):
    """Destination of journal records (strategy interface).

    ``enabled`` lets instrumentation skip building attribute dicts
    entirely when nobody is listening; ``emit`` receives one record
    dict per call, already fully formed.
    """

    enabled: bool

    def emit(self, record: dict) -> None:
        """Persist one journal record."""
        ...

    def close(self) -> None:
        """Flush and release sink resources."""
        ...


class NullJournalSink:
    """The off switch: drops everything, costs one attribute check."""

    enabled = False

    def emit(self, record: dict) -> None:  # pragma: no cover - never called
        pass

    def close(self) -> None:
        pass


class InMemoryJournalSink:
    """Buffers records in ``self.records`` (tests, ad-hoc inspection)."""

    enabled = True

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class FileJournalSink:
    """Appends one JSON line per record to ``path``.

    The stream is flushed on every span and event boundary — task
    records, the bulk of the volume, ride along with their enclosing
    phase — so a run killed mid-chain leaves a journal valid up to the
    last phase that started, which is what makes a chaos run
    reconstructible post mortem (an OS-buffer flush per *task* would
    triple the journalling overhead for no added insight: replay marks
    a phase without its end record as interrupted either way).
    """

    enabled = True

    def __init__(self, path: str):
        self.path = str(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def emit(self, record: dict) -> None:
        # No sort_keys: records of one type are always built with the
        # same key order, so the output is deterministic without paying
        # a per-record sort.
        self._fh.write(
            json.dumps(record, separators=(",", ":"), default=_jsonable)
        )
        self._fh.write("\n")
        if record.get("type") != TASK:
            self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


class _SpanHandle:
    """What ``Journal.span`` yields: collects the span-end attributes."""

    __slots__ = ("id", "attrs")

    def __init__(self, span_id: int):
        self.id = span_id
        self.attrs: dict = {}

    def set(self, **attrs) -> None:
        """Attach attributes to the span's end record."""
        self.attrs.update(attrs)


class _NoopHandle:
    """Shared stand-in handle when the journal is disabled."""

    __slots__ = ()
    id = -1

    def set(self, **attrs) -> None:
        pass


_NOOP_HANDLE = _NoopHandle()


class Journal:
    """The recorder: stamps, numbers and nests records onto a sink.

    One journal serves a whole run (runtime, drivers and algorithm all
    share the instance hanging off :class:`MapReduceRuntime`), so the
    sequence numbers give a total order over everything that happened.
    All emission happens from the submitting thread; the lock below
    only guards against *accidental* concurrent use (e.g. two runtimes
    sharing a file journal), it is not a concurrency feature.
    """

    def __init__(self, sink: "JournalSink | None" = None):
        self.sink = sink if sink is not None else NullJournalSink()
        self._seq = 0
        self._next_span = 0
        self._stack: list[int] = []
        # Re-entrant: the live anomaly watchdog emits its events from
        # *inside* sink.emit (while _emit holds the lock), so a firing
        # lands at the very next sequence number, nested right behind
        # the record that triggered it.
        self._lock = threading.RLock()

    @property
    def enabled(self) -> bool:
        """True when records actually go somewhere."""
        return self.sink.enabled

    # -- emission --------------------------------------------------------

    def _emit(self, record: dict) -> None:
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1
            self.sink.emit(record)

    def _current(self) -> "int | None":
        return self._stack[-1] if self._stack else None

    def start_span(self, kind: str, name: str, /, **attrs) -> int:
        """Open a span; returns its id (also pushed on the nesting stack)."""
        if not self.enabled:
            return -1
        span_id = self._next_span
        self._next_span += 1
        self._emit(
            {
                "type": SPAN_START,
                "span": span_id,
                "parent": self._current(),
                "kind": kind,
                "name": name,
                "attrs": attrs,
                "wall_time": time.time(),
            }
        )
        self._stack.append(span_id)
        return span_id

    def end_span(self, span_id: int, /, **attrs) -> None:
        """Close a span opened by :meth:`start_span`."""
        if not self.enabled:
            return
        if span_id in self._stack:
            # Pop through abandoned inner spans (an exception unwound
            # past them); the journal must never wedge the run.
            while self._stack and self._stack[-1] != span_id:
                self._stack.pop()
            self._stack.pop()
        self._emit(
            {
                "type": SPAN_END,
                "span": span_id,
                "attrs": attrs,
                "wall_time": time.time(),
            }
        )

    @contextmanager
    def span(self, kind: str, name: str, /, **attrs) -> Iterator["_SpanHandle"]:
        """Context manager around start/end; yields a handle whose
        ``set(**attrs)`` calls accumulate into the span-end record. An
        exception escaping the block stamps ``status: "error"`` (unless
        the instrumentation already set a status) and propagates."""
        if not self.enabled:
            yield _NOOP_HANDLE
            return
        handle = _SpanHandle(self.start_span(kind, name, **attrs))
        try:
            yield handle
        except BaseException as err:
            handle.attrs.setdefault("status", "error")
            handle.attrs.setdefault("error", type(err).__name__)
            raise
        finally:
            self.end_span(handle.id, **handle.attrs)

    def event(self, name: str, /, **attrs) -> None:
        """Record a point-in-time event under the current span."""
        if not self.enabled:
            return
        self._emit(
            {
                "type": EVENT,
                "name": name,
                "parent": self._current(),
                "attrs": attrs,
                "wall_time": time.time(),
            }
        )

    def task(
        self,
        task_id: str,
        index: int,
        sim_seconds: float,
        wall_seconds: float,
        cpu_seconds: "float | None" = None,
        peak_memory_bytes: "int | None" = None,
    ) -> None:
        """Record one executed task under the current (phase) span.

        ``cpu_seconds`` and ``peak_memory_bytes`` carry the opt-in
        profiling measurements (``--profile-tasks``); they travel under
        ``wall``-prefixed keys because they are host measurements, not
        simulation outputs — canonical journals stay byte-identical
        with profiling on or off.
        """
        if not self.enabled:
            return
        span_id = self._next_span
        self._next_span += 1
        record = {
            "type": TASK,
            "span": span_id,
            "parent": self._current(),
            "task_id": task_id,
            "index": index,
            "sim_seconds": sim_seconds,
            "wall_seconds": wall_seconds,
        }
        if cpu_seconds is not None:
            record["wall_cpu_seconds"] = cpu_seconds
        if peak_memory_bytes is not None:
            record["wall_peak_memory_bytes"] = peak_memory_bytes
        self._emit(record)

    def close(self) -> None:
        """Close the underlying sink."""
        self.sink.close()

    # -- construction ----------------------------------------------------

    @classmethod
    def from_env(cls, environ=None) -> "Journal":
        """The opt-in switch: a shared file journal when
        ``$REPRO_JOURNAL`` names a path, a disabled journal otherwise.

        File journals are shared per absolute path, so every runtime a
        run constructs appends to one record stream with one global
        sequence numbering.

        When any live-telemetry switch is set (``$REPRO_LIVE``,
        ``$REPRO_METRICS_PORT``, ``$REPRO_SLO``) the journal instead
        tees its records through a live
        :class:`~repro.observability.live.TelemetrySink` (imported
        lazily — :mod:`live` imports this module).
        """
        env = os.environ if environ is None else environ
        from repro.observability.live import telemetry_journal_from_env

        telemetry = telemetry_journal_from_env(env)
        if telemetry is not None:
            return telemetry
        path = (env.get(JOURNAL_ENV) or "").strip()
        if not path:
            return cls(NullJournalSink())
        return file_journal(path)


_FILE_JOURNALS: dict[str, Journal] = {}
_FILE_JOURNALS_LOCK = threading.Lock()


def file_journal(path: str) -> Journal:
    """Get-or-create the process-wide journal appending to ``path``."""
    key = os.path.abspath(path)
    with _FILE_JOURNALS_LOCK:
        journal = _FILE_JOURNALS.get(key)
        if journal is None:
            journal = Journal(FileJournalSink(key))
            _FILE_JOURNALS[key] = journal
        return journal


# -- canonical form ------------------------------------------------------


def canonical_record(record: dict) -> dict:
    """The record minus its wall-clock fields.

    Everything nondeterministic (real timestamps, per-task wall
    durations) lives in keys starting with ``wall``; what remains is
    identical across executor backends for the same seeded run.
    """
    return {
        key: value
        for key, value in record.items()
        if not key.startswith("wall")
    }


def canonical_records(records: Iterable[dict]) -> list[dict]:
    """Canonical form of a whole journal (see :func:`canonical_record`)."""
    return [canonical_record(record) for record in records]


def load_journal(path: str, strict_tail: bool = True) -> list[dict]:
    """Read a JSON-lines journal file back into record dicts.

    A journal being written concurrently (``repro trace --follow``, a
    tailer racing the file sink) or a run killed mid-write (the chaos
    scenario) leaves a partial final line; that truncated tail is
    silently dropped — the journal is valid up to the last complete
    record, which is exactly what replay reconstructs and what the
    next poll of a tailer re-reads whole.

    ``strict_tail`` qualifies the tolerance: when the records *before*
    the partial line show every run span already ended, nothing more
    was legitimately being appended, so the truncated tail is real
    corruption and raises
    :class:`~repro.common.errors.JournalCorruptError` (pass
    ``strict_tail=False`` — as the live tailer does — to tolerate it
    regardless, e.g. between the runs of a multi-run journal still
    being written). A malformed record anywhere before the tail, or a
    line that is valid JSON but not an object, always raises.
    """
    from repro.common.errors import JournalCorruptError

    # Read bytes and decode tolerantly: a tailer can catch the writer
    # mid-record — including mid multi-byte character, where a strict
    # text-mode read would raise UnicodeDecodeError before the tail
    # tolerance below ever ran. Replacement characters make such a tail
    # undecodable JSON, which is exactly the truncated-line case.
    with open(path, "rb") as fh:
        lines = fh.read().decode("utf-8", errors="replace").split("\n")
    records: list[dict] = []
    open_run_ids: set = set()
    saw_run = False
    for lineno, line in enumerate(lines, 1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as exc:
            if any(rest.strip() for rest in lines[lineno:]):
                raise JournalCorruptError(path, lineno, str(exc)) from exc
            # Truncated final record. Mid-run (some run span still
            # open, or no run started yet) this is a concurrent writer
            # caught mid-line: tolerated. After the last run_end there
            # is no legitimate writer left, so it is corruption.
            if strict_tail and saw_run and not open_run_ids:
                raise JournalCorruptError(
                    path,
                    lineno,
                    "truncated record after the final run_end: "
                    + str(exc),
                ) from exc
            break
        if not isinstance(record, dict):
            raise JournalCorruptError(
                path, lineno, f"expected a JSON object, got {type(record).__name__}"
            )
        if record.get("type") == SPAN_START and record.get("kind") == RUN:
            saw_run = True
            open_run_ids.add(record.get("span"))
        elif record.get("type") == SPAN_END:
            open_run_ids.discard(record.get("span"))
        records.append(record)
    return records
