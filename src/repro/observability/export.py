"""Chrome trace-event export of a replayed journal.

``repro trace --format chrome`` turns a journal into the JSON Object
Format of the Trace Event specification, loadable in Perfetto
(https://ui.perfetto.dev) or ``about:tracing``:

* spans become duration (``"ph": "X"``) events — the run, every
  iteration, every job attempt (failed attempts render with zero
  duration at the point their retry was charged) and every phase, each
  on its own track;
* per-task placements (rebuilt with the shared LPT hook) become
  duration events on one track per slot, so stragglers are visible as
  the longest bar in the wave;
* faults, retries, node lifecycle, checkpoints and SLO aborts become
  instant (``"ph": "i"``) events at the simulated time of the segment
  that charged them;
* per-iteration ``k`` and the cumulative simulated makespan become
  counter (``"ph": "C"``) tracks.

The timeline is *simulated* time: segments are placed by the same
left-fold the critical-path extractor uses
(:func:`repro.observability.critical.critical_path`), so the last
event ends exactly at the journalled makespan. Timestamps are
microseconds (the unit the spec mandates); only canonical journal
fields are read, so the export is deterministic across backends.
"""

from __future__ import annotations

import json

from repro.mapreduce.costmodel import lpt_schedule
from repro.observability.critical import CriticalPath, critical_path
from repro.observability.replay import RunReplay, SpanNode

#: Synthetic process id — a journal records one driver process.
PID = 1

#: Track (thread) ids, top to bottom in the viewer.
TID_RUN = 0
TID_ITERATION = 1
TID_JOB = 2
TID_PHASE = 3
#: Per-slot task tracks start here: tid = TID_SLOT_BASE + slot.
TID_SLOT_BASE = 10

_TRACK_NAMES = {
    TID_RUN: "run",
    TID_ITERATION: "iterations",
    TID_JOB: "job attempts",
    TID_PHASE: "phases",
}


def _us(seconds: float) -> float:
    return seconds * 1e6


def _metadata(tid: int, name: str) -> dict:
    return {
        "ph": "M",
        "name": "thread_name",
        "pid": PID,
        "tid": tid,
        "args": {"name": name},
    }


def _duration(name: str, tid: int, start: float, dur: float, args: dict) -> dict:
    return {
        "ph": "X",
        "name": name,
        "cat": "sim",
        "pid": PID,
        "tid": tid,
        "ts": _us(start),
        "dur": _us(max(0.0, dur)),
        "args": args,
    }


def _instant(name: str, tid: int, start: float, args: dict) -> dict:
    return {
        "ph": "i",
        "name": name,
        "cat": "event",
        "pid": PID,
        "tid": tid,
        "ts": _us(start),
        "s": "t",
        "args": args,
    }


def _counter(name: str, start: float, values: dict) -> dict:
    return {
        "ph": "C",
        "name": name,
        "pid": PID,
        "tid": 0,
        "ts": _us(start),
        "args": values,
    }


def _phase_events(
    job_span: SpanNode, start: float, end: float
) -> "tuple[list[dict], set[int]]":
    """Phase + per-slot task events of one on-path job attempt."""
    timing = job_span.get("timing") or {}
    events: list[dict] = []
    slots_used: set[int] = set()
    cursor = start
    segments = [
        ("startup", float(timing.get("startup_seconds") or 0.0), None),
        ("map", float(timing.get("map_seconds") or 0.0), "map"),
        ("shuffle", float(timing.get("shuffle_seconds") or 0.0), None),
        ("reduce", float(timing.get("reduce_seconds") or 0.0), "reduce"),
    ]
    phase_spans = {
        child.name: child for child in job_span.children if child.kind == "phase"
    }
    for label, seconds, phase_name in segments:
        if seconds <= 0:
            continue
        events.append(
            _duration(
                f"{job_span.name}:{label}",
                TID_PHASE,
                cursor,
                seconds,
                {"job": job_span.name, "phase": label, "seconds": seconds},
            )
        )
        phase = phase_spans.get(phase_name) if phase_name else None
        if phase is not None and phase.tasks:
            sims = [task.sim_seconds for task in phase.tasks]
            slots = int(phase.get("slots") or 1)
            # Rebuild the wave with the shared LPT hook; when a smarter
            # scheduler beat plain LPT, stretch placements to fill the
            # recorded phase window so tasks never overhang it.
            placement = lpt_schedule(sims, slots)
            span_end = max(end_ for _, _, _, end_ in placement)
            scale = seconds / span_end if span_end > 0 else 0.0
            for index, slot, t_start, t_end in placement:
                slots_used.add(slot)
                task = phase.tasks[index]
                events.append(
                    _duration(
                        f"{phase_name}[{task.index}]",
                        TID_SLOT_BASE + slot,
                        cursor + t_start * scale,
                        (t_end - t_start) * scale,
                        {
                            "task_id": task.task_id,
                            "sim_seconds": task.sim_seconds,
                            "slot": slot,
                        },
                    )
                )
        cursor += seconds
    overhead = end - cursor
    if overhead > 1e-12:
        events.append(
            _duration(
                f"{job_span.name}:overhead",
                TID_PHASE,
                cursor,
                overhead,
                {"job": job_span.name, "phase": "overhead", "seconds": overhead},
            )
        )
    return events, slots_used


def chrome_trace(replay: RunReplay, path: "CriticalPath | None" = None) -> dict:
    """Build the Trace Event JSON object for ``replay``.

    ``path`` lets callers reuse an already-extracted critical path; by
    default one is computed (it provides the simulated placement of
    every on-path segment).
    """
    if path is None:
        path = critical_path(replay)
    events: list[dict] = []
    slots_used: set[int] = set()
    placed: dict[int, tuple[float, float]] = {}

    for restore in path.restores:
        events.append(
            _duration(
                f"checkpoint restore ({restore.name})",
                TID_JOB,
                restore.start,
                restore.seconds,
                {
                    "iteration": restore.iteration,
                    "jobs": restore.jobs,
                    "seconds": restore.seconds,
                },
            )
        )

    iteration_windows: dict[int, list[float]] = {}
    for on_path in path.jobs:
        span = replay.spans.get(on_path.span)
        if span is None:
            continue
        placed[span.id] = (on_path.start, on_path.end)
        events.append(
            _duration(
                span.name,
                TID_JOB,
                on_path.start,
                on_path.sim_seconds,
                {
                    "attempt": on_path.attempt,
                    "sim_seconds": on_path.sim_seconds,
                    "overhead_seconds": on_path.overhead_seconds,
                    "blame": on_path.blame,
                },
            )
        )
        phase_events, used = _phase_events(span, on_path.start, on_path.end)
        events.extend(phase_events)
        slots_used |= used
        parent = span.parent
        if parent is not None and parent.kind == "iteration":
            window = iteration_windows.setdefault(
                parent.id, [on_path.start, on_path.end]
            )
            window[0] = min(window[0], on_path.start)
            window[1] = max(window[1], on_path.end)

    # Failed/abandoned attempts: zero-duration bars where the winning
    # sibling started (their backoff is charged there).
    for attempt in path.off_path:
        span = replay.spans.get(attempt.span)
        if span is None:
            continue
        anchor = 0.0
        parent = span.parent
        if parent is not None and parent.id in iteration_windows:
            anchor = iteration_windows[parent.id][0]
        placed[span.id] = (anchor, anchor)
        events.append(
            _duration(
                f"{attempt.job} (failed attempt {attempt.attempt})",
                TID_JOB,
                anchor,
                0.0,
                {"status": attempt.status, "attempt": attempt.attempt},
            )
        )

    for iteration in replay.iterations():
        window = iteration_windows.get(iteration.id)
        if window is None:
            continue
        placed[iteration.id] = (window[0], window[1])
        events.append(
            _duration(
                iteration.name,
                TID_ITERATION,
                window[0],
                window[1] - window[0],
                {
                    "k_before": iteration.get("k_before"),
                    "k_after": iteration.get("k_after"),
                    "strategy": iteration.get("strategy"),
                    "degraded": iteration.get("degraded"),
                },
            )
        )
        k_after = iteration.get("k_after")
        if k_after is not None:
            events.append(_counter("k", window[1], {"k": k_after}))

    cumulative = 0.0
    for on_path in path.jobs:
        cumulative = on_path.end
        events.append(
            _counter(
                "simulated makespan (s)",
                cumulative,
                {"seconds": cumulative},
            )
        )

    for run in replay.runs():
        status = run.get("status")
        events.append(
            _duration(
                run.name,
                TID_RUN,
                0.0,
                path.total_seconds,
                {
                    "status": status,
                    "k": run.get("k"),
                    "simulated_seconds": run.get("simulated_seconds"),
                    "backend": run.get("backend"),
                },
            )
        )
        if status == "error":
            events.append(
                _instant(
                    f"aborted: {run.get('error')}",
                    TID_RUN,
                    path.total_seconds,
                    {"error": run.get("error"), "message": run.get("message")},
                )
            )
        placed.setdefault(run.id, (0.0, path.total_seconds))

    for event in replay.events:
        if event.name == "checkpoint_restore":
            continue  # already a duration bar at the head of the path
        anchor, tid = 0.0, TID_RUN
        parent = replay.spans.get(event.parent) if event.parent else None
        while parent is not None and parent.id not in placed:
            parent = parent.parent
        if parent is not None:
            anchor = placed[parent.id][0]
            tid = {
                "run": TID_RUN,
                "iteration": TID_ITERATION,
                "job": TID_JOB,
                "phase": TID_PHASE,
            }.get(parent.kind, TID_RUN)
        events.append(_instant(event.name, tid, anchor, dict(event.attrs)))

    metadata = [_metadata(tid, name) for tid, name in _TRACK_NAMES.items()]
    metadata.extend(
        _metadata(TID_SLOT_BASE + slot, f"slot {slot}")
        for slot in sorted(slots_used)
    )
    metadata.append(
        {
            "ph": "M",
            "name": "process_name",
            "pid": PID,
            "tid": 0,
            "args": {"name": "repro simulated run"},
        }
    )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def render_chrome_trace(replay: RunReplay) -> str:
    """Serialize :func:`chrome_trace` to a JSON string."""
    return json.dumps(chrome_trace(replay), indent=None, sort_keys=False)


#: Phases of the Trace Event spec this exporter emits.
_VALID_PHASES = {"X", "i", "C", "M"}


def validate_trace(trace: dict) -> "list[str]":
    """Schema check for the emitted trace; returns a list of problems.

    An empty list means the trace satisfies the invariants the Trace
    Event JSON Object Format requires (and Perfetto relies on): a
    ``traceEvents`` array whose entries all carry ``ph``/``name``/
    ``pid``/``tid``, numeric non-negative ``ts`` where required,
    ``dur`` on duration events, ``s`` on instants and ``args`` dicts
    on counters/metadata.
    """
    problems: list[str] = []
    if not isinstance(trace, dict):
        return ["trace is not a JSON object"]
    trace_events = trace.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["traceEvents is not an array"]
    for position, event in enumerate(trace_events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: unknown ph {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key}")
        if phase in ("X", "i", "C"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant missing scope")
        if phase in ("C", "M") and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: missing args")
    return problems
