"""Reconstruct a recorded run from its journal.

A journal is a flat, append-only record stream; this module folds it
back into the span tree it came from, so the trace CLI (and the
integration suite) can ask run-level questions: which job attempts ran
(including the retried and failed ones), what each phase and task
cost, where the faults and checkpoints were, and whether the journal's
accounting adds up to the totals the run reported.

The replay is defensive about truncation: a run killed mid-chain
leaves spans without end records, which replay surfaces as spans with
``end is None`` instead of failing — reconstructing interrupted runs
is precisely the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mapreduce.counters import Counters
from repro.observability.journal import (
    EVENT,
    ITERATION,
    JOB,
    PHASE,
    RUN,
    SPAN_END,
    SPAN_START,
    TASK,
    load_journal,
)


@dataclass
class TaskRecord:
    """One executed task, as recorded under its phase span.

    ``cpu_seconds`` and ``peak_memory_bytes`` are present only when the
    run profiled its tasks (``--profile-tasks``); they come from the
    ``wall_cpu_seconds`` / ``wall_peak_memory_bytes`` journal keys.
    """

    task_id: str
    index: int
    sim_seconds: float
    wall_seconds: float
    cpu_seconds: "float | None" = None
    peak_memory_bytes: "int | None" = None

    @property
    def profiled(self) -> bool:
        """True when this task carries real resource measurements."""
        return self.cpu_seconds is not None or self.peak_memory_bytes is not None


@dataclass
class EventRecord:
    """One point-in-time event (fault, retry, checkpoint, ...)."""

    seq: int
    name: str
    parent: "int | None"
    attrs: dict
    wall_time: "float | None" = None


@dataclass
class SpanNode:
    """One reconstructed span with its children, tasks and events."""

    id: int
    kind: str
    name: str
    attrs: dict = field(default_factory=dict)
    end: "dict | None" = None
    parent: "SpanNode | None" = None
    children: "list[SpanNode]" = field(default_factory=list)
    tasks: "list[TaskRecord]" = field(default_factory=list)
    events: "list[EventRecord]" = field(default_factory=list)
    start_seq: int = 0
    wall_start: "float | None" = None
    wall_end: "float | None" = None

    @property
    def complete(self) -> bool:
        """False when the run died before this span could end."""
        return self.end is not None

    def get(self, key: str, default=None):
        """Look up ``key`` in the end attrs, falling back to the start."""
        if self.end is not None and key in self.end:
            return self.end[key]
        return self.attrs.get(key, default)

    def find(self, kind: str) -> "list[SpanNode]":
        """All descendant spans of ``kind``, in journal order."""
        found = []
        for child in self.children:
            if child.kind == kind:
                found.append(child)
            found.extend(child.find(kind))
        return found

    def counters(self) -> Counters:
        """The counter delta this span recorded (empty if none)."""
        return Counters.from_dict(self.get("counters") or {})


def left_fold_seconds(values) -> float:
    """Plain left-fold float sum, in iteration order.

    The runtime accumulates ``totals.simulated_seconds`` with ``+=``
    and :func:`repro.observability.critical.critical_path` places its
    segments at the partial sums of the same fold — all plain left
    folds. CPython 3.12+ builtin ``sum()`` switched to Neumaier
    compensated summation, which can differ bitwise from that fold, so
    every side of an exact-reconciliation identity must accumulate
    through this helper (or an equivalent explicit loop), never
    through builtin ``sum()``.
    """
    total = 0.0
    for value in values:
        total = total + value
    return total


@dataclass
class RunReplay:
    """A whole journal, reconstructed."""

    records: list[dict]
    roots: "list[SpanNode]"
    spans: "dict[int, SpanNode]"
    events: "list[EventRecord]"

    # -- views -----------------------------------------------------------

    def runs(self) -> "list[SpanNode]":
        return self._of_kind(RUN)

    def iterations(self) -> "list[SpanNode]":
        return self._of_kind(ITERATION)

    def jobs(self) -> "list[SpanNode]":
        """Every job *attempt* span, in submission order."""
        return self._of_kind(JOB)

    def phases(self) -> "list[SpanNode]":
        return self._of_kind(PHASE)

    def _of_kind(self, kind: str) -> "list[SpanNode]":
        return sorted(
            (span for span in self.spans.values() if span.kind == kind),
            key=lambda span: span.start_seq,
        )

    def events_named(self, name: str) -> "list[EventRecord]":
        return [event for event in self.events if event.name == name]

    def node_events(self) -> "list[EventRecord]":
        """Node lifecycle events (lost / recovered / blacklisted), in
        journal order — the raw material of the per-node availability
        report in ``repro analyze``."""
        lifecycle = {"node_lost", "node_recovered", "node_blacklisted"}
        return [event for event in self.events if event.name in lifecycle]

    def anomaly_events(self) -> "list[EventRecord]":
        """The in-flight detector firings (``anomaly`` events), in
        journal order. Each event's attrs carry the anomaly type under
        ``anomaly`` plus the detector's inputs; ``repro anomalies
        JOURNAL --check`` proves they re-derive exactly."""
        return self.events_named("anomaly")

    # -- accounting cross-checks -----------------------------------------

    def successful_jobs(self) -> "list[SpanNode]":
        return [job for job in self.jobs() if job.get("status") == "ok"]

    def restored_baselines(self) -> "list[EventRecord]":
        """``checkpoint_restore`` events carry the totals a resumed run
        inherited; replay accounting must add them back in."""
        return self.events_named("checkpoint_restore")

    def total_counters(self) -> Counters:
        """Counters the journal accounts for: every successful job's
        delta, plus any totals restored from a checkpoint.

        Failed attempts contribute nothing — exactly as the runtime
        discards a failed attempt's counters — so this must equal the
        run's final reported ``Counters``.
        """
        totals = Counters()
        for restore in self.restored_baselines():
            totals.merge(Counters.from_dict(restore.attrs.get("counters") or {}))
        for job in self.successful_jobs():
            totals.merge(job.counters())
        return totals

    def total_simulated_seconds(self) -> float:
        """Simulated seconds the journal accounts for (see above)."""
        total = left_fold_seconds(
            float(restore.attrs.get("simulated_seconds") or 0.0)
            for restore in self.restored_baselines()
        )
        return total + left_fold_seconds(
            float(job.get("simulated_seconds") or 0.0)
            for job in self.successful_jobs()
        )


def replay_records(records: "list[dict]") -> RunReplay:
    """Fold a record list back into a :class:`RunReplay`."""
    spans: dict[int, SpanNode] = {}
    roots: list[SpanNode] = []
    events: list[EventRecord] = []
    for record in records:
        kind = record.get("type")
        if kind == SPAN_START:
            node = SpanNode(
                id=record["span"],
                kind=record.get("kind", ""),
                name=record.get("name", ""),
                attrs=record.get("attrs") or {},
                start_seq=record.get("seq", 0),
                wall_start=record.get("wall_time"),
            )
            spans[node.id] = node
            parent = spans.get(record.get("parent"))
            if parent is not None:
                node.parent = parent
                parent.children.append(node)
            else:
                roots.append(node)
        elif kind == SPAN_END:
            node = spans.get(record.get("span"))
            if node is not None:
                node.end = record.get("attrs") or {}
                node.wall_end = record.get("wall_time")
        elif kind == TASK:
            parent = spans.get(record.get("parent"))
            cpu = record.get("wall_cpu_seconds")
            peak = record.get("wall_peak_memory_bytes")
            task = TaskRecord(
                task_id=record.get("task_id", ""),
                index=int(record.get("index", 0)),
                sim_seconds=float(record.get("sim_seconds", 0.0)),
                wall_seconds=float(record.get("wall_seconds", 0.0)),
                cpu_seconds=float(cpu) if cpu is not None else None,
                peak_memory_bytes=int(peak) if peak is not None else None,
            )
            if parent is not None:
                parent.tasks.append(task)
        elif kind == EVENT:
            event = EventRecord(
                seq=record.get("seq", 0),
                name=record.get("name", ""),
                parent=record.get("parent"),
                attrs=record.get("attrs") or {},
                wall_time=record.get("wall_time"),
            )
            events.append(event)
            parent = spans.get(event.parent)
            if parent is not None:
                parent.events.append(event)
    return RunReplay(records=records, roots=roots, spans=spans, events=events)


def replay_journal(path: str) -> RunReplay:
    """Load and reconstruct the journal file at ``path``."""
    return replay_records(load_journal(path))
