"""What-if simulator: re-schedule a recorded run under a modified
cluster configuration.

A journal records every successful job's per-task simulated durations,
per-phase timings, live slot capacity and counters. That is enough to
*deterministically* re-run the scheduling decision — not the
clustering math — under a changed configuration: different slot
counts, a wider or narrower shuffle fabric, the combiner turned off, a
different split granularity, or pure-LPT placement instead of the
recorded (possibly locality-aware) schedule. ``repro whatif JOURNAL
--set num_workers=8`` prints the predicted makespan delta; the
:mod:`benchmarks.bench_whatif_accuracy` bench validates predictions
against real re-runs.

Prediction model (per successful job)
-------------------------------------

* **startup / overhead** — configuration-independent, kept as recorded.
* **map / reduce** — the recorded per-task durations are re-scheduled
  with the shared LPT hook
  (:func:`repro.mapreduce.costmodel.lpt_schedule`) onto the scenario's
  slot count. Predictions are *calibrated*: the new LPT makespan is
  scaled by ``recorded / LPT(recorded slots)`` so a journal whose
  scheduler beat (or trailed) plain LPT keeps that ratio —
  ``scheduler=lpt`` disables the calibration and predicts the pure LPT
  schedule. An untouched phase predicts exactly its recorded seconds.
* **shuffle** — recorded seconds scaled by ``recorded nodes / new
  nodes`` (the fabric is per-node) and by the combiner growth ratio.
* **combiner off** — shuffle bytes and reduce input records grow by
  ``COMBINE_INPUT_RECORDS / COMBINE_OUTPUT_RECORDS``; each reduce
  task's non-startup time scales accordingly. Jobs without combine
  counters are unaffected. (``combiner=on`` over a journal recorded
  without a combiner has nothing to infer from and predicts no change.)
* **split_factor F** — map work is re-binned into ``round(F × tasks)``
  balanced tasks of ``startup + work/count`` seconds each (skew within
  a phase is not preserved across re-binning; the bench bounds the
  resulting error).
* **reduce task count** — when a job's recorded reduce-task count
  followed cluster capacity (one task per slot, the runtime's default)
  the re-bin follows the scenario's capacity too; explicitly-sized
  jobs keep their count.

Scenario keys accepted by ``--set``: ``nodes``, ``num_workers`` (total
slots per phase), ``map_slots``, ``reduce_slots``, ``combiner``
(on/off), ``split_factor``, ``scheduler`` (``lpt``/``recorded``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.mapreduce.costmodel import makespan
from repro.mapreduce.counters import FRAMEWORK_GROUP, MRCounter
from repro.observability.replay import RunReplay, SpanNode, left_fold_seconds

#: ``--set`` keys, with parsers. ``num_workers`` is the CLI-friendly
#: alias for "total task slots per phase" — the simulated analogue of
#: adding or removing workers.
SCENARIO_KEYS = (
    "nodes",
    "num_workers",
    "map_slots",
    "reduce_slots",
    "combiner",
    "split_factor",
    "scheduler",
)

SCHEDULERS = ("recorded", "lpt")


class ScenarioError(ValueError):
    """A ``--set`` assignment that cannot be parsed or applied."""


@dataclass(frozen=True)
class Scenario:
    """One counterfactual configuration, all knobs optional."""

    nodes: "int | None" = None
    num_workers: "int | None" = None
    map_slots: "int | None" = None
    reduce_slots: "int | None" = None
    combiner: "bool | None" = None
    split_factor: "float | None" = None
    scheduler: "str | None" = None

    def __post_init__(self) -> None:
        for name in ("nodes", "num_workers", "map_slots", "reduce_slots"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ScenarioError(f"{name} must be >= 1, got {value}")
        if self.split_factor is not None and self.split_factor <= 0:
            raise ScenarioError(
                f"split_factor must be > 0, got {self.split_factor}"
            )
        if self.scheduler is not None and self.scheduler not in SCHEDULERS:
            raise ScenarioError(
                f"scheduler must be one of {SCHEDULERS}, got {self.scheduler!r}"
            )

    @property
    def empty(self) -> bool:
        return all(
            getattr(self, name) is None for name in SCENARIO_KEYS
        )

    def describe(self) -> str:
        bits = [
            f"{name}={getattr(self, name)}"
            for name in SCENARIO_KEYS
            if getattr(self, name) is not None
        ]
        return ", ".join(bits) or "(no changes)"


def parse_scenario(assignments: "list[str]") -> Scenario:
    """Parse repeated ``--set key=value`` strings into a Scenario."""
    values: dict = {}
    for assignment in assignments:
        key, sep, raw = assignment.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ScenarioError(
                f"expected key=value, got {assignment!r}"
            )
        if key not in SCENARIO_KEYS:
            raise ScenarioError(
                f"unknown scenario key {key!r}; known: {', '.join(SCENARIO_KEYS)}"
            )
        raw = raw.strip()
        if key in ("nodes", "num_workers", "map_slots", "reduce_slots"):
            try:
                values[key] = int(raw)
            except ValueError as exc:
                raise ScenarioError(f"{key} expects an integer: {raw!r}") from exc
        elif key == "split_factor":
            try:
                values[key] = float(raw)
            except ValueError as exc:
                raise ScenarioError(f"{key} expects a number: {raw!r}") from exc
        elif key == "combiner":
            lowered = raw.lower()
            if lowered in ("on", "true", "1", "yes"):
                values[key] = True
            elif lowered in ("off", "false", "0", "no"):
                values[key] = False
            else:
                raise ScenarioError(f"combiner expects on/off: {raw!r}")
        else:
            values[key] = raw
    return Scenario(**values)


PHASE_ORDER = ("startup", "map", "shuffle", "reduce", "overhead")


@dataclass(frozen=True)
class JobPrediction:
    """Recorded vs predicted per-phase seconds of one successful job."""

    job: str
    attempt: int
    recorded: "dict[str, float]"
    predicted: "dict[str, float]"

    @property
    def recorded_seconds(self) -> float:
        return left_fold_seconds(self.recorded.values())

    @property
    def predicted_seconds(self) -> float:
        return left_fold_seconds(self.predicted.values())


@dataclass
class WhatIfReport:
    """Outcome of re-scheduling one journal under one scenario."""

    scenario: Scenario
    recorded_total: float
    predicted_total: float
    restore_seconds: float
    jobs: "list[JobPrediction]" = field(default_factory=list)
    #: Successful jobs recorded without a per-phase ``timing`` dict:
    #: nothing to re-schedule, so their simulated seconds ride both
    #: totals unchanged (like restored baselines) instead of silently
    #: dropping out of the recorded makespan.
    as_recorded_jobs: int = 0
    as_recorded_seconds: float = 0.0

    @property
    def delta_seconds(self) -> float:
        return self.predicted_total - self.recorded_total

    @property
    def delta_fraction(self) -> "float | None":
        if self.recorded_total > 0:
            return self.delta_seconds / self.recorded_total
        return None

    def phase_totals(self) -> "dict[str, tuple[float, float]]":
        totals = {name: [0.0, 0.0] for name in PHASE_ORDER}
        for job in self.jobs:
            for name in PHASE_ORDER:
                totals[name][0] += job.recorded.get(name, 0.0)
                totals[name][1] += job.predicted.get(name, 0.0)
        return {name: (rec, pred) for name, (rec, pred) in totals.items()}

    def as_dict(self) -> dict:
        return {
            "scenario": asdict(self.scenario),
            "recorded_total": self.recorded_total,
            "predicted_total": self.predicted_total,
            "delta_seconds": self.delta_seconds,
            "delta_fraction": self.delta_fraction,
            "restore_seconds": self.restore_seconds,
            "as_recorded_jobs": self.as_recorded_jobs,
            "as_recorded_seconds": self.as_recorded_seconds,
            "phase_totals": {
                name: {"recorded": rec, "predicted": pred}
                for name, (rec, pred) in self.phase_totals().items()
            },
            "jobs": [
                {
                    "job": job.job,
                    "attempt": job.attempt,
                    "recorded": job.recorded,
                    "predicted": job.predicted,
                    "recorded_seconds": job.recorded_seconds,
                    "predicted_seconds": job.predicted_seconds,
                }
                for job in self.jobs
            ],
        }


def _phase_tasks(job: SpanNode, name: str) -> "tuple[SpanNode | None, list[float]]":
    for child in job.children:
        if child.kind == "phase" and child.name == name:
            return child, [task.sim_seconds for task in child.tasks]
    return None, []


def _combine_growth(job: SpanNode, scenario: Scenario) -> float:
    """Record growth factor for the scenario's combiner setting."""
    if scenario.combiner is not False:
        return 1.0
    if not job.get("combiner_optional"):
        # Only jobs whose combiner is droppable pre-aggregation (the
        # runtime journals the flag) change when the knob flips; jobs
        # whose combiner is load-bearing keep theirs in a real re-run.
        return 1.0
    counters = job.counters()
    cin = counters.get(FRAMEWORK_GROUP, MRCounter.COMBINE_INPUT_RECORDS)
    cout = counters.get(FRAMEWORK_GROUP, MRCounter.COMBINE_OUTPUT_RECORDS)
    if cin > 0 and cout > 0:
        return cin / cout
    return 1.0


def _scaled_slots(
    recorded_slots: int,
    explicit: "int | None",
    scenario: Scenario,
    recorded_nodes: "int | None",
) -> int:
    if explicit is not None:
        return max(1, explicit)
    if scenario.num_workers is not None:
        return max(1, scenario.num_workers)
    if scenario.nodes is not None and recorded_nodes:
        return max(
            1, int(round(recorded_slots * scenario.nodes / recorded_nodes))
        )
    return recorded_slots


def _predict_phase(
    sims: "list[float]",
    recorded_seconds: float,
    recorded_slots: int,
    new_slots: int,
    scenario: Scenario,
    startup: float,
    rebin_count: "int | None" = None,
    work_scale: float = 1.0,
) -> float:
    """Calibrated LPT prediction for one phase (see module docstring)."""
    if not sims:
        return recorded_seconds
    tasks = list(sims)
    if work_scale != 1.0:
        tasks = [startup + (t - startup) * work_scale for t in tasks]
    if rebin_count is not None and rebin_count != len(tasks):
        work = sum(max(0.0, t - startup) for t in tasks)
        tasks = [startup + work / rebin_count] * rebin_count
    untouched = (
        new_slots == recorded_slots
        and tasks == sims
        and scenario.scheduler != "lpt"
    )
    if untouched:
        return recorded_seconds
    predicted = makespan(tasks, new_slots)
    if scenario.scheduler != "lpt":
        baseline = makespan(sims, recorded_slots)
        if baseline > 0 and recorded_seconds > 0:
            predicted *= recorded_seconds / baseline
    return predicted


def _predict_job(
    job: SpanNode, scenario: Scenario, task_startup: float
) -> "JobPrediction | None":
    timing = job.get("timing") or {}
    if not timing:
        return None
    sim = float(job.get("simulated_seconds") or 0.0)
    recorded = {
        "startup": float(timing.get("startup_seconds") or 0.0),
        "map": float(timing.get("map_seconds") or 0.0),
        "shuffle": float(timing.get("shuffle_seconds") or 0.0),
        "reduce": float(timing.get("reduce_seconds") or 0.0),
    }
    recorded["overhead"] = sim - left_fold_seconds(recorded.values())
    nodes = job.get("nodes")
    recorded_nodes = int(nodes) if nodes else None
    growth = _combine_growth(job, scenario)

    map_phase, map_sims = _phase_tasks(job, "map")
    map_slots = int(map_phase.get("slots") or 1) if map_phase else 1
    new_map_slots = _scaled_slots(
        map_slots, scenario.map_slots, scenario, recorded_nodes
    )
    map_rebin = None
    if scenario.split_factor is not None and map_sims:
        map_rebin = max(1, int(round(len(map_sims) * scenario.split_factor)))
    predicted_map = _predict_phase(
        map_sims,
        recorded["map"],
        map_slots,
        new_map_slots,
        scenario,
        task_startup,
        rebin_count=map_rebin,
    )

    reduce_phase, reduce_sims = _phase_tasks(job, "reduce")
    reduce_slots = int(reduce_phase.get("slots") or 1) if reduce_phase else 1
    new_reduce_slots = _scaled_slots(
        reduce_slots, scenario.reduce_slots, scenario, recorded_nodes
    )
    reduce_rebin = None
    if reduce_sims and len(reduce_sims) == reduce_slots:
        # Capacity-following job (the runtime's default sizing): the
        # re-run would size its reduce wave to the new capacity too.
        if new_reduce_slots != reduce_slots:
            reduce_rebin = new_reduce_slots
    predicted_reduce = _predict_phase(
        reduce_sims,
        recorded["reduce"],
        reduce_slots,
        new_reduce_slots,
        scenario,
        task_startup,
        rebin_count=reduce_rebin,
        work_scale=growth,
    )

    predicted_shuffle = recorded["shuffle"] * growth
    if scenario.nodes is not None and recorded_nodes:
        predicted_shuffle *= recorded_nodes / scenario.nodes

    predicted = {
        "startup": recorded["startup"],
        "map": predicted_map,
        "shuffle": predicted_shuffle,
        "reduce": predicted_reduce,
        "overhead": recorded["overhead"],
    }
    return JobPrediction(
        job=job.name,
        attempt=int(job.get("attempt") or 1),
        recorded=recorded,
        predicted=predicted,
    )


def whatif_replay(
    replay: RunReplay,
    scenario: Scenario,
    task_startup_seconds: float = 1.0,
) -> WhatIfReport:
    """Re-schedule every successful job of ``replay`` under ``scenario``.

    ``task_startup_seconds`` must match the run's
    :class:`~repro.mapreduce.costmodel.CostParameters` (default
    matches the defaults) — it is only used to split task durations
    into startup and work for re-binning. An empty scenario predicts
    exactly the recorded totals (the identity check the test suite
    pins).
    """
    # Same left fold as RunReplay.total_simulated_seconds, so an
    # identity scenario's recorded total matches the journalled
    # makespan bitwise on every Python version.
    restore_seconds = left_fold_seconds(
        float(restore.attrs.get("simulated_seconds") or 0.0)
        for restore in replay.restored_baselines()
    )
    jobs = []
    recorded_total = restore_seconds
    predicted_total = restore_seconds
    as_recorded_jobs = 0
    as_recorded_seconds = 0.0
    for span in replay.successful_jobs():
        prediction = _predict_job(span, scenario, task_startup_seconds)
        if prediction is None:
            # No per-phase timing journalled: nothing to re-schedule,
            # but the job's clock-charged seconds still belong to the
            # makespan. Carry them as-recorded on both sides (like the
            # restored baselines) and surface the count in the report.
            seconds = float(span.get("simulated_seconds") or 0.0)
            as_recorded_jobs += 1
            as_recorded_seconds += seconds
            recorded_total += seconds
            predicted_total += seconds
            continue
        jobs.append(prediction)
        recorded_total += prediction.recorded_seconds
        predicted_total += prediction.predicted_seconds
    return WhatIfReport(
        scenario=scenario,
        recorded_total=recorded_total,
        predicted_total=predicted_total,
        restore_seconds=restore_seconds,
        jobs=jobs,
        as_recorded_jobs=as_recorded_jobs,
        as_recorded_seconds=as_recorded_seconds,
    )


def render_whatif(report: WhatIfReport, limit: int = 12) -> str:
    """Terminal rendering of a what-if prediction."""
    frac = report.delta_fraction
    frac_text = f" ({frac * 100:+.1f}%)" if frac is not None else ""
    lines = [
        f"scenario: {report.scenario.describe()}",
        f"recorded makespan:  {report.recorded_total:12.2f}s",
        f"predicted makespan: {report.predicted_total:12.2f}s"
        f"  delta {report.delta_seconds:+.2f}s{frac_text}",
        "",
        "per-phase totals (recorded -> predicted):",
    ]
    for name, (rec, pred) in report.phase_totals().items():
        if rec == 0 and pred == 0:
            continue
        delta = pred - rec
        lines.append(
            f"  {name:<8} {rec:10.2f}s -> {pred:10.2f}s  ({delta:+.2f}s)"
        )
    moved = sorted(
        report.jobs,
        key=lambda job: -abs(job.predicted_seconds - job.recorded_seconds),
    )
    moved = [
        job
        for job in moved
        if abs(job.predicted_seconds - job.recorded_seconds) > 1e-9
    ]
    if moved:
        lines.append("")
        lines.append("most-moved jobs:")
        for job in moved[:limit]:
            delta = job.predicted_seconds - job.recorded_seconds
            lines.append(
                f"  {job.job} (attempt {job.attempt}): "
                f"{job.recorded_seconds:.2f}s -> {job.predicted_seconds:.2f}s"
                f" ({delta:+.2f}s)"
            )
        if len(moved) > limit:
            lines.append(f"  ... {len(moved) - limit} more jobs moved")
    if report.restore_seconds:
        lines.append(
            f"restored baselines contribute {report.restore_seconds:.2f}s "
            "to both totals (not re-scheduled)"
        )
    if report.as_recorded_jobs:
        lines.append(
            f"{report.as_recorded_jobs} job(s) recorded without timing "
            f"carried as-recorded ({report.as_recorded_seconds:.2f}s, "
            "not re-scheduled)"
        )
    return "\n".join(lines)
