"""Cross-run regression detection over two recorded journals.

``repro diff BASELINE CANDIDATE`` reduces each journal to a
:class:`RunSummary` — accounted simulated time, per-phase totals, the
reconciled counter totals, the k-trajectory, and fault-event counts —
then compares candidate against baseline under configurable
thresholds. Time and watched-counter growth beyond the threshold is a
regression; a diverging k-trajectory is *always* a regression (the
algorithm's results changed, not just its cost) unless explicitly
allowed. The CLI exits non-zero when any regression is found, which is
what turns a committed baseline journal into a CI perf gate.

Wall-clock fields are never compared — only simulated, deterministic
quantities — so journals recorded on different machines (or different
executor backends) diff cleanly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.mapreduce.counters import (
    FRAMEWORK_GROUP,
    MRCounter,
    USER_GROUP,
    UserCounter,
)
from repro.observability.replay import RunReplay

#: Counters the diff gates on: the cost drivers of the paper's model
#: plus the fault-tolerance work a regression could silently inflate.
WATCHED_COUNTERS = (
    (FRAMEWORK_GROUP, MRCounter.DATASET_READS),
    (FRAMEWORK_GROUP, MRCounter.HDFS_BYTES_READ),
    (FRAMEWORK_GROUP, MRCounter.SHUFFLE_BYTES),
    (FRAMEWORK_GROUP, MRCounter.JOB_RETRIES),
    (USER_GROUP, UserCounter.DISTANCE_COMPUTATIONS),
    (USER_GROUP, UserCounter.AD_TESTS),
)

#: Phase keys of the per-job ``timing`` breakdown, summed per run.
PHASE_KEYS = ("startup_seconds", "map_seconds", "shuffle_seconds", "reduce_seconds")


@dataclass
class RunSummary:
    """Everything the diff compares, reduced from one journal."""

    runs: int = 0
    jobs: int = 0
    job_attempts: int = 0
    degraded_iterations: int = 0
    simulated_seconds: float = 0.0
    phase_seconds: "dict[str, float]" = field(default_factory=dict)
    counters: "dict[str, dict[str, int]]" = field(default_factory=dict)
    k_trajectory: "list[list[int | None]]" = field(default_factory=list)
    k_found: "int | None" = None
    fault_events: "dict[str, int]" = field(default_factory=dict)

    def counter(self, group: str, name: str) -> int:
        return int(self.counters.get(group, {}).get(name, 0))

    def as_dict(self) -> dict:
        return asdict(self)


#: Fault-tolerance events worth surfacing in the diff (report-only
#: unless they move a watched counter or the clock).
FAULT_EVENTS = (
    "job_retry",
    "task_attempt_failures",
    "speculative_task",
    "replica_failover",
    "blocks_lost",
    "re_replication",
    "checkpoint_write",
    "checkpoint_restore",
    "degraded_iteration",
    "iteration_skipped",
    "node_lost",
    "node_recovered",
    "node_blacklisted",
    "tasks_rescheduled",
    "strategy_redecision",
    "tune_decision",
    "anomaly",
    "anomaly_config",
)


def summarize_replay(replay: RunReplay) -> RunSummary:
    """Reduce a replayed journal to the diffable :class:`RunSummary`."""
    summary = RunSummary()
    summary.runs = len(replay.runs())
    successful = replay.successful_jobs()
    summary.jobs = len(successful)
    summary.job_attempts = len(replay.jobs())
    summary.simulated_seconds = replay.total_simulated_seconds()
    summary.counters = replay.total_counters().as_dict()
    phase_totals = {key: 0.0 for key in PHASE_KEYS}
    for job in successful:
        timing = job.get("timing") or {}
        for key in PHASE_KEYS:
            phase_totals[key] += float(timing.get(key) or 0.0)
    summary.phase_seconds = phase_totals
    for span in replay.iterations():
        summary.k_trajectory.append([span.get("k_before"), span.get("k_after")])
        if span.get("degraded"):
            summary.degraded_iterations += 1
    for run in replay.runs():
        k_found = run.get("k_found")
        if k_found is not None:
            summary.k_found = int(k_found)
    for name in FAULT_EVENTS:
        count = len(replay.events_named(name))
        if count:
            summary.fault_events[name] = count
    return summary


@dataclass(frozen=True)
class DiffThresholds:
    """Regression gates for :func:`diff_summaries`.

    ``max_time_regression`` / ``max_counter_regression`` are fractional
    growth budgets (0.10 = candidate may be up to 10% worse).
    ``min_seconds`` / ``min_counter`` are absolute floors below which a
    base value is too small for a fractional comparison to be
    meaningful — any candidate growth past the floor then counts.
    """

    max_time_regression: float = 0.10
    max_counter_regression: float = 0.25
    min_seconds: float = 1e-6
    min_counter: int = 10
    allow_k_drift: bool = False


@dataclass(frozen=True)
class DiffEntry:
    """One compared metric."""

    metric: str
    baseline: object
    candidate: object
    regression: bool
    note: str = ""


@dataclass
class DiffReport:
    """Outcome of one baseline/candidate comparison."""

    baseline_path: str
    candidate_path: str
    thresholds: DiffThresholds
    entries: "list[DiffEntry]" = field(default_factory=list)

    @property
    def regressions(self) -> "list[DiffEntry]":
        return [entry for entry in self.entries if entry.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def as_dict(self) -> dict:
        return {
            "baseline": self.baseline_path,
            "candidate": self.candidate_path,
            "thresholds": asdict(self.thresholds),
            "ok": self.ok,
            "entries": [asdict(entry) for entry in self.entries],
        }


def _growth(base: float, cand: float) -> "float | None":
    if base > 0:
        return (cand - base) / base
    return None


def _compare_seconds(
    entries: "list[DiffEntry]",
    metric: str,
    base: float,
    cand: float,
    thresholds: DiffThresholds,
) -> None:
    growth = _growth(base, cand)
    if growth is not None:
        regression = growth > thresholds.max_time_regression
        note = f"{growth * 100:+.1f}%"
    else:
        regression = cand > thresholds.min_seconds
        note = "new cost" if regression else ""
    entries.append(
        DiffEntry(
            metric=metric,
            baseline=round(base, 6),
            candidate=round(cand, 6),
            regression=regression,
            note=note,
        )
    )


def diff_summaries(
    baseline: RunSummary,
    candidate: RunSummary,
    thresholds: "DiffThresholds | None" = None,
    baseline_path: str = "baseline",
    candidate_path: str = "candidate",
) -> DiffReport:
    """Compare two run summaries under ``thresholds``."""
    thresholds = thresholds or DiffThresholds()
    report = DiffReport(
        baseline_path=baseline_path,
        candidate_path=candidate_path,
        thresholds=thresholds,
    )
    entries = report.entries

    _compare_seconds(
        entries,
        "simulated_seconds",
        baseline.simulated_seconds,
        candidate.simulated_seconds,
        thresholds,
    )
    for key in PHASE_KEYS:
        _compare_seconds(
            entries,
            f"phase.{key}",
            baseline.phase_seconds.get(key, 0.0),
            candidate.phase_seconds.get(key, 0.0),
            thresholds,
        )

    for group, name in WATCHED_COUNTERS:
        base = baseline.counter(group, name)
        cand = candidate.counter(group, name)
        if base == cand == 0:
            continue
        growth = _growth(base, cand)
        if growth is not None and base >= thresholds.min_counter:
            regression = growth > thresholds.max_counter_regression
            note = f"{growth * 100:+.1f}%"
        else:
            regression = cand > max(base, thresholds.min_counter)
            note = "grew past floor" if regression else ""
        entries.append(
            DiffEntry(
                metric=f"counter.{group}.{name}",
                baseline=base,
                candidate=cand,
                regression=regression,
                note=note,
            )
        )

    k_same = (
        baseline.k_trajectory == candidate.k_trajectory
        and baseline.k_found == candidate.k_found
    )
    entries.append(
        DiffEntry(
            metric="k_trajectory",
            baseline=f"{baseline.k_trajectory} -> k={baseline.k_found}",
            candidate=f"{candidate.k_trajectory} -> k={candidate.k_found}",
            regression=not k_same and not thresholds.allow_k_drift,
            note="" if k_same else "results diverged",
        )
    )

    entries.append(
        DiffEntry(
            metric="jobs",
            baseline=f"{baseline.jobs} ok / {baseline.job_attempts} attempts",
            candidate=f"{candidate.jobs} ok / {candidate.job_attempts} attempts",
            regression=candidate.job_attempts - candidate.jobs
            > baseline.job_attempts - baseline.jobs,
            note="more failed attempts"
            if candidate.job_attempts - candidate.jobs
            > baseline.job_attempts - baseline.jobs
            else "",
        )
    )
    entries.append(
        DiffEntry(
            metric="degraded_iterations",
            baseline=baseline.degraded_iterations,
            candidate=candidate.degraded_iterations,
            regression=candidate.degraded_iterations
            > baseline.degraded_iterations,
        )
    )

    names = sorted(
        set(baseline.fault_events) | set(candidate.fault_events)
    )
    for name in names:
        base = baseline.fault_events.get(name, 0)
        cand = candidate.fault_events.get(name, 0)
        if base != cand:
            # Fault-event counts are informational: their *cost* gates
            # through time/counters; chaos schedules legitimately vary.
            entries.append(
                DiffEntry(
                    metric=f"event.{name}",
                    baseline=base,
                    candidate=cand,
                    regression=False,
                    note="informational",
                )
            )
    return report


def diff_replays(
    baseline: RunReplay,
    candidate: RunReplay,
    thresholds: "DiffThresholds | None" = None,
    baseline_path: str = "baseline",
    candidate_path: str = "candidate",
) -> DiffReport:
    """Summarise and compare two replayed journals."""
    return diff_summaries(
        summarize_replay(baseline),
        summarize_replay(candidate),
        thresholds,
        baseline_path=baseline_path,
        candidate_path=candidate_path,
    )


def render_diff(report: DiffReport) -> str:
    """Terminal rendering of a :class:`DiffReport`."""
    lines = [
        f"baseline:  {report.baseline_path}",
        f"candidate: {report.candidate_path}",
        "",
    ]
    width = max((len(entry.metric) for entry in report.entries), default=6)
    for entry in report.entries:
        flag = "REGRESSION" if entry.regression else "ok"
        note = f"  [{entry.note}]" if entry.note else ""
        lines.append(
            f"  {entry.metric:<{width}}  {entry.baseline} -> "
            f"{entry.candidate}  {flag}{note}"
        )
    lines.append("")
    if report.ok:
        lines.append("no regressions beyond thresholds")
    else:
        lines.append(
            f"{len(report.regressions)} regression(s): "
            + ", ".join(entry.metric for entry in report.regressions)
        )
    return "\n".join(lines)
