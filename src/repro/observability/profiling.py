"""Per-task profiling: real wall time, CPU time and peak memory.

The cost model *simulates* what a task costs on the paper's testbed;
profiling measures what the task body actually costs *here* — wall
seconds, CPU seconds (``time.thread_time``, so worker threads don't
charge each other) and the ``tracemalloc`` peak of the task body.
The runtime stamps the measurements onto the journal's task records,
where ``repro analyze`` turns them into real memory numbers to audit
the paper's 64-bytes-per-point Figure-2 heap model against.

Profiling is opt-in (``--profile-tasks`` / ``$REPRO_PROFILE_TASKS``)
and two-tiered, because ``tracemalloc`` is not free — tracing every
allocation a numpy-heavy task body makes costs more wall-clock than
the task itself. CPU and wall seconds are measured for *every*
profiled task (two clock reads, effectively free); the tracemalloc
peak is *sampled* — the runtime arms memory tracing for the first task
of each phase of geometrically sampled jobs only (the 1st, 2nd, 4th,
8th, ... job of the run), which keeps the profiled-run overhead within the
benchmark's 10% budget while still giving ``repro analyze`` a real
per-phase memory number to audit the 64-bytes/point Figure-2 model
against (task bodies of one phase are allocation-homogeneous). The
measurements are *observations, never inputs* — nothing downstream
computes with them, and they travel in journal keys under the ``wall``
prefix, so canonical journals stay byte-identical with profiling on or
off.

``tracemalloc`` state is process-global, so memory-traced task bodies
are serialised by a lock: under the ``threads`` backend the sampled
tasks cost parallelism (CPU-only profiling does not take the lock;
``processes`` workers trace independently).
"""

from __future__ import annotations

import os
import threading
import time
import tracemalloc
from dataclasses import dataclass

#: Environment variable enabling per-task profiling (the CLI's
#: ``--profile-tasks`` flag writes it); unset/empty/falsey means off.
PROFILE_TASKS_ENV = "REPRO_PROFILE_TASKS"

#: Values of boolean-ish environment variables read as "on".
_TRUTHY = ("1", "true", "yes", "on")

_TRACEMALLOC_LOCK = threading.Lock()


def env_flag(value: "str | None") -> bool:
    """Interpret an environment-variable string as a boolean switch."""
    return (value or "").strip().lower() in _TRUTHY


def profiling_from_env(environ=None) -> bool:
    """True when ``$REPRO_PROFILE_TASKS`` asks for per-task profiling."""
    env = os.environ if environ is None else environ
    return env_flag(env.get(PROFILE_TASKS_ENV))


@dataclass
class TaskProfile:
    """Real resource usage of one task body, measured where it ran.

    ``peak_memory_bytes`` is ``None`` when the task was not among the
    memory-sampled ones (see the module docstring) — "not measured" and
    "zero bytes" must stay distinguishable.
    """

    cpu_seconds: float = 0.0
    peak_memory_bytes: "int | None" = None


class TaskProfiler:
    """Context manager measuring CPU time and (optionally) the
    tracemalloc peak.

    ::

        with TaskProfiler(memory=True) as profile:
            ...task body...
        profile.cpu_seconds, profile.peak_memory_bytes

    With ``memory=True``, holds the process-wide tracemalloc lock for
    the duration of the block (tracemalloc's peak counter is global)
    and nests under an already-tracing tracemalloc by resetting the
    peak instead of starting a second trace. With ``memory=False``,
    only the two CPU-clock reads happen — no lock, no tracing.
    """

    def __init__(self, memory: bool = True) -> None:
        self.profile = TaskProfile()
        self.memory = bool(memory)
        self._cpu_start = 0.0
        self._started_tracing = False

    def __enter__(self) -> TaskProfile:
        if self.memory:
            _TRACEMALLOC_LOCK.acquire()
            if tracemalloc.is_tracing():
                tracemalloc.reset_peak()
            else:
                tracemalloc.start()
                self._started_tracing = True
        self._cpu_start = time.thread_time()
        return self.profile

    def __exit__(self, *exc_info) -> None:
        self.profile.cpu_seconds = time.thread_time() - self._cpu_start
        if self.memory:
            _current, peak = tracemalloc.get_traced_memory()
            self.profile.peak_memory_bytes = int(peak)
            if self._started_tracing:
                tracemalloc.stop()
            _TRACEMALLOC_LOCK.release()


class _NullProfiler:
    """The off switch: yields a shared zero profile, measures nothing."""

    _ZERO = TaskProfile()

    def __enter__(self) -> TaskProfile:
        return self._ZERO

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_PROFILER = _NullProfiler()


def task_profiler(
    enabled: bool, memory: bool = False
) -> "TaskProfiler | _NullProfiler":
    """A :class:`TaskProfiler` when ``enabled``, else a free no-op.

    ``memory`` additionally arms tracemalloc peak tracing — expensive,
    so the runtime samples it (first task per phase of geometrically
    sampled jobs) rather than paying it per task.
    """
    return TaskProfiler(memory=memory) if enabled else _NULL_PROFILER
