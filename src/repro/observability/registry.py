"""Cross-run registry: a directory of journals as a queryable warehouse.

``repro report RUNDIR`` scans a directory for journal files
(``*.jsonl``), reduces each to one :class:`RunEntry` — the
:class:`~repro.observability.diffing.RunSummary` the diff gate already
uses, plus the critical-path blame breakdown, wasted-compute
accounting and the SLO verdict — and renders a longitudinal dashboard:
k trajectories, makespan and wasted-compute trends, blame-over-time
and SLO/fault history. The machine-readable index (``index.json``) is
the metric source the ROADMAP's admission controller and self-driving
ablation engine will query; the markdown/HTML dashboard under
``reports/`` is the same data for humans.

Runs are ordered by filename, so a date- or sequence-prefixed naming
scheme (``2026-08-01-chaos.jsonl``) gives a chronological dashboard
for free.
"""

from __future__ import annotations

import html
import json
import os
from dataclasses import dataclass, field

from repro.observability.critical import BLAME_CATEGORIES, critical_path
from repro.observability.diffing import RunSummary, summarize_replay
from repro.observability.replay import RunReplay, replay_journal

#: Files considered journals when scanning a registry directory.
JOURNAL_SUFFIX = ".jsonl"

#: Index schema version, bumped on incompatible changes.
#: v2: run entries carry ``anomalies`` (per-type live detector firing
#: counts from the journal's ``anomaly`` events).
INDEX_SCHEMA_VERSION = 2


@dataclass
class RunEntry:
    """One journal, reduced to registry-queryable facts."""

    label: str
    path: str
    summary: RunSummary
    blame: "dict[str, float]" = field(default_factory=dict)
    reconciled: bool = True
    slo_abort: bool = False
    error: "str | None" = None
    wasted_attempts: int = 0
    wasted_seconds: float = 0.0
    anomalies: "dict[str, int]" = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        return self.summary.simulated_seconds

    @property
    def k_path(self) -> str:
        """``5 -> 6 -> 7`` rendering of the recorded k trajectory."""
        ks: list[str] = []
        for before, after in self.summary.k_trajectory:
            if not ks:
                ks.append(str(before))
            ks.append(str(after))
        return " -> ".join(ks) if ks else "-"

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "path": self.path,
            "summary": self.summary.as_dict(),
            "blame": dict(self.blame),
            "reconciled": self.reconciled,
            "slo_abort": self.slo_abort,
            "error": self.error,
            "wasted_attempts": self.wasted_attempts,
            "wasted_seconds": self.wasted_seconds,
            "anomalies": dict(self.anomalies),
        }


class RegistryError(ValueError):
    """The registry directory cannot be scanned."""


def entry_from_replay(label: str, path: str, replay: RunReplay) -> RunEntry:
    """Reduce one replayed journal to a :class:`RunEntry`."""
    summary = summarize_replay(replay)
    cpath = critical_path(replay)
    slo_abort = False
    error = None
    for run in replay.runs():
        if run.get("status") == "error":
            error = str(run.get("error") or "error")
            if error == "SLOViolationError":
                slo_abort = True
    wasted_attempts = 0
    wasted_seconds = 0.0
    for attempt in replay.jobs():
        if attempt.get("status") == "ok":
            continue
        wasted_attempts += 1
        wasted_seconds += float(attempt.get("simulated_seconds") or 0.0)
    anomalies: dict[str, int] = {}
    for event in replay.anomaly_events():
        kind = str(event.attrs.get("anomaly") or "unknown")
        anomalies[kind] = anomalies.get(kind, 0) + 1
    return RunEntry(
        label=label,
        path=path,
        summary=summary,
        blame=dict(cpath.blame),
        reconciled=cpath.reconciled,
        slo_abort=slo_abort,
        error=error,
        wasted_attempts=wasted_attempts,
        wasted_seconds=wasted_seconds,
        anomalies=anomalies,
    )


def scan_registry(rundir: str) -> "list[RunEntry]":
    """Scan ``rundir`` for journals and reduce each to a RunEntry.

    Entries come back in filename order (the registry's notion of
    time). A directory with no journals is a :class:`RegistryError` —
    an empty dashboard is almost always a wrong path.
    """
    if not os.path.isdir(rundir):
        raise RegistryError(f"not a directory: {rundir}")
    names = sorted(
        name
        for name in os.listdir(rundir)
        if name.endswith(JOURNAL_SUFFIX)
    )
    if not names:
        raise RegistryError(f"no {JOURNAL_SUFFIX} journals under {rundir}")
    entries = []
    for name in names:
        path = os.path.join(rundir, name)
        label = name[: -len(JOURNAL_SUFFIX)]
        entries.append(entry_from_replay(label, path, replay_journal(path)))
    return entries


def registry_index(entries: "list[RunEntry]") -> dict:
    """The machine-readable ``index.json`` payload."""
    return {
        "schema_version": INDEX_SCHEMA_VERSION,
        "runs": [entry.as_dict() for entry in entries],
    }


# -- rendering -----------------------------------------------------------

_BAR_WIDTH = 28


def _bar(value: float, peak: float, width: int = _BAR_WIDTH) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1 if value > 0 else 0, int(round(value / peak * width)))


def _ablation_section(ablation: "dict | None", tune: "dict | None") -> "list[str]":
    """The "Ablations & tuning" dashboard lines (empty when neither
    report exists under ``reports/``)."""
    if not ablation and not tune:
        return []
    lines = ["", "## Ablations & tuning", ""]
    if ablation:
        variants = ablation.get("variants", [])
        ranked = sorted(
            variants, key=lambda v: -abs(v.get("delta_makespan", 0.0))
        )
        lines += [
            f"Latest importance report (`repro ablate`): "
            f"{len(variants)} single-flip variants, "
            f"{'fully reconciled' if ablation.get('ok') else '**NOT RECONCILED**'}.",
            "",
            "| rank | flip | Δ makespan (s) | Δ makespan | invariant |",
            "|---:|---|---:|---:|---|",
        ]
        for rank, v in enumerate(ranked, start=1):
            invariant = (
                ("ok" if v.get("invariant_ok") else "**VIOLATED**")
                if v.get("simulated_invariant")
                else "-"
            )
            lines.append(
                f"| {rank} | {v.get('component')}={v.get('label')} "
                f"| {v.get('delta_makespan', 0.0):+.3f} "
                f"| {v.get('delta_fraction', 0.0) * 100:+.1f}% "
                f"| {invariant} |"
            )
        lines.append("")
    if tune:
        winner = tune.get("winner")
        lines.append(
            f"Latest autotune (`repro tune`): "
            f"{len(tune.get('predictions', []))} candidates predicted from "
            f"one baseline journal, {len(tune.get('validated', []))} "
            "validated by re-runs."
        )
        if winner:
            cand = winner.get("candidate", {})
            improvement = tune.get("improvement_fraction")
            lines.append(
                f"- winner: nodes={cand.get('nodes')}, "
                f"combiner={'on' if cand.get('combiner') else 'off'}, "
                f"split_factor={cand.get('split_factor')} — "
                f"{winner.get('actual_seconds', 0.0):.3f}s validated"
                + (
                    f" ({improvement * 100:+.1f}% vs baseline)"
                    if improvement is not None
                    else ""
                )
            )
            lines.append(
                f"- prediction error {winner.get('rel_error', 0.0):.4f} "
                f"against the {tune.get('budget')} budget "
                f"({'within' if tune.get('ok') else '**EXCEEDED**'}); "
                "winning config in `best-config.json`"
            )
        lines.append("")
    if lines[-1] == "":
        lines.pop()
    return lines


def render_dashboard(
    entries: "list[RunEntry]",
    ablation: "dict | None" = None,
    tune: "dict | None" = None,
) -> str:
    """Longitudinal markdown dashboard over the registry's runs."""
    lines = [
        "# Run registry dashboard",
        "",
        f"{len(entries)} journal(s), ordered by filename.",
        "",
        "## Runs",
        "",
        "| run | makespan (s) | jobs ok/attempts | k found | k trajectory "
        "| reconciled | anomalies | verdict |",
        "|---|---:|---:|---:|---|---|---|---|",
    ]
    for entry in entries:
        summary = entry.summary
        verdict = "ok"
        if entry.slo_abort:
            verdict = "SLO abort"
        elif entry.error:
            verdict = f"error: {entry.error}"
        anomalies = (
            ", ".join(
                f"{kind} x{count}"
                for kind, count in sorted(entry.anomalies.items())
            )
            or "-"
        )
        lines.append(
            f"| {entry.label} | {entry.makespan:.2f} "
            f"| {summary.jobs}/{summary.job_attempts} "
            f"| {summary.k_found if summary.k_found is not None else '-'} "
            f"| {entry.k_path} "
            f"| {'yes' if entry.reconciled else 'NO'} "
            f"| {anomalies} "
            f"| {verdict} |"
        )

    peak = max((entry.makespan for entry in entries), default=0.0)
    lines += ["", "## Makespan trend", "", "```"]
    for entry in entries:
        lines.append(
            f"{entry.label:<28} {entry.makespan:10.2f}s "
            f"{_bar(entry.makespan, peak)}"
        )
    lines.append("```")

    peak_wasted = max((entry.wasted_seconds for entry in entries), default=0.0)
    lines += ["", "## Wasted compute (failed attempts)", "", "```"]
    for entry in entries:
        lines.append(
            f"{entry.label:<28} {entry.wasted_attempts:3d} attempts "
            f"{entry.wasted_seconds:10.2f}s "
            f"{_bar(entry.wasted_seconds, peak_wasted)}"
        )
    lines.append("```")

    lines += [
        "",
        "## Critical-path blame over time",
        "",
        "| run | " + " | ".join(BLAME_CATEGORIES) + " |",
        "|---|" + "---:|" * len(BLAME_CATEGORIES),
    ]
    for entry in entries:
        total = entry.makespan or 1.0
        cells = []
        for category in BLAME_CATEGORIES:
            seconds = entry.blame.get(category, 0.0)
            cells.append(
                f"{seconds:.1f}s ({seconds / total * 100:.0f}%)"
                if seconds
                else "-"
            )
        lines.append(f"| {entry.label} | " + " | ".join(cells) + " |")

    lines += ["", "## SLO & fault history", ""]
    any_history = False
    for entry in entries:
        events = entry.summary.fault_events
        bits = [f"{name} x{count}" for name, count in sorted(events.items())]
        if entry.slo_abort:
            bits.insert(0, "**SLO ABORT**")
        elif entry.error:
            bits.insert(0, f"**{entry.error}**")
        if bits:
            any_history = True
            lines.append(f"- `{entry.label}`: " + ", ".join(bits))
    if not any_history:
        lines.append("- no faults, aborts or SLO breaches recorded")
    lines += _ablation_section(ablation, tune)
    lines.append("")
    return "\n".join(lines)


def render_dashboard_html(
    entries: "list[RunEntry]",
    ablation: "dict | None" = None,
    tune: "dict | None" = None,
) -> str:
    """Self-contained HTML wrapper around the markdown dashboard.

    Deliberately dependency-free: the markdown body is embedded
    verbatim in a ``<pre>`` (tables and code fences read fine
    monospaced), so the page needs no converter and no JS.
    """
    body = html.escape(render_dashboard(entries, ablation=ablation, tune=tune))
    return (
        "<!doctype html>\n"
        "<html><head><meta charset='utf-8'>"
        "<title>repro run registry</title>"
        "<style>body{font-family:monospace;margin:2rem;"
        "max-width:72rem}pre{white-space:pre-wrap}</style>"
        "</head><body><pre>\n"
        f"{body}\n"
        "</pre></body></html>\n"
    )


def write_report(
    rundir: str,
    out_dir: str = "reports",
    basename: str = "dashboard",
    with_html: bool = True,
) -> "dict[str, str]":
    """Scan ``rundir`` and write index + dashboard under ``out_dir``.

    Returns a mapping of artifact kind (``index`` / ``markdown`` /
    ``html``) to the written path. When ``out_dir`` holds the ablation
    engine's ``ablation.json`` / ``tune.json`` (see ``repro ablate`` /
    ``repro tune``), the dashboard gains an "Ablations & tuning"
    section rendering them; a missing or unreadable report simply
    leaves the section out.
    """
    entries = scan_registry(rundir)
    ablation = _load_optional_report(os.path.join(out_dir, "ablation.json"))
    tune = _load_optional_report(os.path.join(out_dir, "tune.json"))
    os.makedirs(out_dir, exist_ok=True)
    written: dict[str, str] = {}
    index_path = os.path.join(out_dir, f"{basename}-index.json")
    with open(index_path, "w", encoding="utf-8") as handle:
        json.dump(registry_index(entries), handle, indent=2, sort_keys=True)
        handle.write("\n")
    written["index"] = index_path
    markdown_path = os.path.join(out_dir, f"{basename}.md")
    with open(markdown_path, "w", encoding="utf-8") as handle:
        handle.write(render_dashboard(entries, ablation=ablation, tune=tune))
    written["markdown"] = markdown_path
    if with_html:
        html_path = os.path.join(out_dir, f"{basename}.html")
        with open(html_path, "w", encoding="utf-8") as handle:
            handle.write(
                render_dashboard_html(entries, ablation=ablation, tune=tune)
            )
        written["html"] = html_path
    return written


def _load_optional_report(path: str) -> "dict | None":
    """Load an ablation/tune report JSON if present and well-formed."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None
