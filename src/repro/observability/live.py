"""Live run telemetry: consume the journal stream *while it happens*.

PR 3's journal and PR 4's analytics are post-hoc — you learn a run
doubled k past budget or stalled on a straggler only after it ends.
This module tees the same record stream into an in-process aggregator
as it is emitted, so an in-flight run can be watched, scraped and
guarded:

* :class:`TelemetrySink` — a journal sink that forwards every record
  to an inner sink (file or null) *and* folds it into a
  :class:`LiveRunState`, then lets a renderer, an SLO watchdog and ad
  hoc listeners react;
* :class:`LiveRunState` — the aggregate: current iteration and
  k-trajectory, per-phase task progress, counter totals, fault-event
  counts, heap high-water fraction, and a cost-model-flavoured ETA;
* :class:`LiveRenderer` — a ``--live`` TTY progress view (bars +
  rolling counters, repainted in place), degrading to one plain
  status line per iteration on non-TTY streams;
* :class:`MetricsServer` — an opt-in ``--metrics-port`` HTTP thread
  serving ``/metrics`` (Prometheus text of the live counters),
  ``/healthz`` and a JSON ``/state`` snapshot, so a run can be
  scraped mid-flight;
* :func:`follow_journal` — ``repro trace --follow``: tail a growing
  file-sink journal and re-render incrementally.

Determinism contract: telemetry *observes* the record stream and
nothing here touches an RNG stream; results and canonical journals are
byte-identical with telemetry on or off. The one sanctioned emitter is
the opt-in anomaly watchdog (``--anomaly`` /
:mod:`repro.observability.anomaly`): its firings are pure functions of
simulated quantities, emitted through the journal's own re-entrant
sequencing, so journals with detectors armed stay byte-identical
across backends too — and exactly re-derivable offline.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.mapreduce.counters import Counters
from repro.observability.journal import (
    EVENT,
    ITERATION,
    JOB,
    JOURNAL_ENV,
    PHASE,
    RUN,
    SPAN_END,
    SPAN_START,
    TASK,
    FileJournalSink,
    Journal,
    JournalSink,
    NullJournalSink,
    load_journal,
)
from repro.observability.metrics import render_prometheus

#: Environment variables wired to the CLI's live-telemetry flags.
LIVE_ENV = "REPRO_LIVE"
METRICS_PORT_ENV = "REPRO_METRICS_PORT"


class LiveRunState:
    """The in-process aggregate of a run's journal stream so far.

    One instance serves a whole run; :meth:`consume` folds records in
    as the :class:`TelemetrySink` emits them, :meth:`progress` receives
    sub-phase task-completion ticks from the runtime's executor (task
    *records* are journalled only after a phase completes; live
    progress needs the ticks). All mutation happens under one lock, so
    the metrics-server thread can snapshot safely mid-run.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._span_kinds: dict[int, str] = {}
        self._span_names: dict[int, str] = {}
        # run
        self.run_name: "str | None" = None
        self.run_attrs: dict = {}
        self.run_status: "str | None" = None
        self.wall_started: "float | None" = None
        self.wall_latest: "float | None" = None
        # iterations / k
        self.iteration: int = 0
        self.k_before: "int | None" = None
        self.k_current: "int | None" = None
        self.k_trajectory: list[int] = []
        self.iterations_done: int = 0
        self.last_iteration: dict = {}
        # jobs / phases
        self.job_name: "str | None" = None
        self.job_attempt: "int | None" = None
        self.jobs_ok: int = 0
        self.jobs_failed: int = 0
        self.phase_name: "str | None" = None
        self.phase_tasks_total: int = 0
        self.phase_tasks_done: int = 0
        # accounting
        self.counters = Counters()
        self.simulated_seconds: float = 0.0
        self.max_heap_fraction: float = 0.0
        self.event_counts: dict[str, int] = {}
        # Node failure domains: latest per-node status and the capacity
        # the last node lifecycle event reported. Both stay empty for
        # runs without node faults, and the snapshot/gauges only grow
        # node fields once an event has been seen.
        self.node_status: dict[int, str] = {}
        self.node_capacity: dict = {}
        # SLO breaches land here (the watchdog appends); part of /state.
        self.breaches: list[dict] = []
        # Anomaly firings (typed ``anomaly`` journal events from the
        # in-flight detectors) in firing order, plus per-type counts —
        # what the panel badge, /state and the SLO ``on_anomaly`` rules
        # read.
        self.anomalies: list[dict] = []
        self.anomaly_counts: dict[str, int] = {}

    # -- ingestion -------------------------------------------------------

    def consume(self, record: dict) -> None:
        """Fold one journal record into the aggregate."""
        with self._lock:
            self.wall_latest = record.get("wall_time") or self.wall_latest
            handler = {
                SPAN_START: self._consume_start,
                SPAN_END: self._consume_end,
                TASK: self._consume_task,
                EVENT: self._consume_event,
            }.get(record.get("type"))
            if handler is not None:
                handler(record)

    def progress(self, phase: str, done: int, total: int) -> None:
        """Task-completion tick from the runtime (sub-phase granularity)."""
        with self._lock:
            self.phase_name = phase
            self.phase_tasks_total = int(total)
            self.phase_tasks_done = max(self.phase_tasks_done, int(done))

    def _consume_start(self, record: dict) -> None:
        span, kind = record.get("span"), record.get("kind")
        attrs = record.get("attrs") or {}
        self._span_kinds[span] = kind
        self._span_names[span] = record.get("name", "")
        if kind == RUN:
            self.run_name = record.get("name")
            self.run_attrs = dict(attrs)
            self.run_status = "running"
            self.wall_started = record.get("wall_time")
            k_init = attrs.get("k_init")
            if k_init is not None and self.k_current is None:
                self.k_current = int(k_init)
        elif kind == ITERATION:
            self.iteration = int(attrs.get("iteration") or self.iteration + 1)
            self.k_before = attrs.get("k_before")
            if self.k_before is not None:
                self.k_current = int(self.k_before)
        elif kind == JOB:
            self.job_name = record.get("name")
            self.job_attempt = attrs.get("attempt")
        elif kind == PHASE:
            self.phase_name = record.get("name")
            self.phase_tasks_total = int(attrs.get("tasks") or 0)
            self.phase_tasks_done = 0

    def _consume_end(self, record: dict) -> None:
        kind = self._span_kinds.get(record.get("span"))
        attrs = record.get("attrs") or {}
        if kind == RUN:
            self.run_status = str(attrs.get("status") or "ok")
        elif kind == ITERATION:
            self.iterations_done += 1
            k_after = attrs.get("k_after")
            if k_after is not None:
                self.k_current = int(k_after)
                self.k_trajectory.append(int(k_after))
            self.last_iteration = {
                "iteration": self.iteration,
                "k_before": self.k_before,
                "k_after": k_after,
                "clusters_split": attrs.get("clusters_split"),
                "strategy": attrs.get("strategy"),
                "degraded": bool(attrs.get("degraded")),
                "simulated_seconds": attrs.get("simulated_seconds"),
            }
        elif kind == JOB:
            if attrs.get("status") == "ok":
                self.jobs_ok += 1
                self.counters.merge(Counters.from_dict(attrs.get("counters") or {}))
                self.simulated_seconds += float(
                    attrs.get("simulated_seconds") or 0.0
                )
                heap_bytes = attrs.get("heap_bytes")
                max_heap = attrs.get("max_reduce_heap_bytes")
                if heap_bytes and max_heap is not None:
                    self.max_heap_fraction = max(
                        self.max_heap_fraction, float(max_heap) / float(heap_bytes)
                    )
            elif attrs.get("status") == "failed":
                self.jobs_failed += 1
        elif kind == PHASE:
            self.phase_tasks_done = self.phase_tasks_total

    def _consume_task(self, record: dict) -> None:
        if self._span_kinds.get(record.get("parent")) == PHASE:
            self.phase_tasks_done = min(
                self.phase_tasks_total or self.phase_tasks_done + 1,
                self.phase_tasks_done + 1,
            )

    def _consume_event(self, record: dict) -> None:
        name = record.get("name", "")
        self.event_counts[name] = self.event_counts.get(name, 0) + 1
        if name == "anomaly":
            attrs = record.get("attrs") or {}
            kind = str(attrs.get("anomaly") or "unknown")
            self.anomaly_counts[kind] = self.anomaly_counts.get(kind, 0) + 1
            self.anomalies.append(dict(attrs))
        if name in ("node_lost", "node_recovered", "node_blacklisted"):
            attrs = record.get("attrs") or {}
            node = attrs.get("node")
            if node is not None:
                self.node_status[int(node)] = {
                    "node_lost": "dead",
                    "node_recovered": "alive",
                    "node_blacklisted": "blacklisted",
                }[name]
            self.node_capacity = {
                key: attrs[key]
                for key in (
                    "schedulable_nodes",
                    "total_map_slots",
                    "total_reduce_slots",
                )
                if key in attrs
            }
        if name == "checkpoint_restore":
            attrs = record.get("attrs") or {}
            self.counters.merge(Counters.from_dict(attrs.get("counters") or {}))
            self.simulated_seconds += float(attrs.get("simulated_seconds") or 0.0)
            baseline_jobs = attrs.get("jobs")
            if baseline_jobs:
                self.jobs_ok += int(baseline_jobs)

    # -- derived views ---------------------------------------------------

    @property
    def job_retries(self) -> int:
        return self.event_counts.get("job_retry", 0)

    def wall_seconds(self, now: "float | None" = None) -> float:
        """Real seconds since the run span opened (0 before it does)."""
        with self._lock:
            if self.wall_started is None:
                return 0.0
            return max(0.0, (now if now is not None else time.time()) - self.wall_started)

    def eta_simulated_seconds(self) -> float:
        """Crude cost-model ETA for the *next* round of work.

        G-means iterations cost roughly linearly in k (the cost model's
        per-point terms dominate), so while clusters keep splitting the
        next round is estimated as the last round's simulated seconds
        scaled by the k growth factor; once an iteration splits nothing
        the chain is about to terminate and the ETA is zero. A
        heuristic, not a promise — shown as ``~eta``.
        """
        with self._lock:
            last = self.last_iteration
            if not last or self.run_status not in (None, "running"):
                return 0.0
            if not last.get("clusters_split"):
                return 0.0
            seconds = float(last.get("simulated_seconds") or 0.0)
            k_before = int(last.get("k_before") or 1) or 1
            k_after = int(last.get("k_after") or k_before)
            return seconds * (k_after / k_before)

    def counters_copy(self) -> Counters:
        """Thread-safe copy of the accounted counter totals so far."""
        with self._lock:
            return self.counters.copy()

    def live_gauges(self, now: "float | None" = None) -> dict[str, float]:
        """Run-level gauges for the Prometheus endpoint.

        All names live under the ``live_`` prefix, which no counter
        group uses — the telemetry endpoint can therefore never collide
        with a journal-derived ``repro_<group>_<name>`` counter.
        """
        with self._lock:
            gauges = {
                "live_iteration": float(self.iteration),
                "live_iterations_done": float(self.iterations_done),
                "live_k": float(self.k_current or 0),
                "live_phase_tasks_done": float(self.phase_tasks_done),
                "live_phase_tasks_total": float(self.phase_tasks_total),
                "live_jobs_ok": float(self.jobs_ok),
                "live_jobs_failed": float(self.jobs_failed),
                "live_job_retries": float(self.job_retries),
                "live_simulated_seconds": float(self.simulated_seconds),
                "live_max_heap_fraction": float(self.max_heap_fraction),
                "live_slo_breaches": float(len(self.breaches)),
                "live_anomalies": float(len(self.anomalies)),
                "live_eta_simulated_seconds": 0.0,
                "live_run_complete": float(
                    self.run_status not in (None, "running")
                ),
            }
            for kind in sorted(self.anomaly_counts):
                gauges[f"live_anomalies_{kind}"] = float(
                    self.anomaly_counts[kind]
                )
            if self.node_status:
                statuses = self.node_status.values()
                gauges["live_nodes_dead"] = float(
                    sum(1 for status in statuses if status == "dead")
                )
                gauges["live_nodes_blacklisted"] = float(
                    sum(1 for status in statuses if status == "blacklisted")
                )
                capacity = self.node_capacity
                if "total_map_slots" in capacity:
                    gauges["live_total_map_slots"] = float(
                        capacity["total_map_slots"]
                    )
                if "total_reduce_slots" in capacity:
                    gauges["live_total_reduce_slots"] = float(
                        capacity["total_reduce_slots"]
                    )
        gauges["live_eta_simulated_seconds"] = self.eta_simulated_seconds()
        gauges["live_wall_seconds"] = self.wall_seconds(now)
        return gauges

    def snapshot(self, now: "float | None" = None) -> dict:
        """JSON-ready view of the whole aggregate (the ``/state`` body)."""
        with self._lock:
            snap = {
                "run": self.run_name,
                "run_status": self.run_status or "pending",
                "run_attrs": dict(self.run_attrs),
                "iteration": self.iteration,
                "iterations_done": self.iterations_done,
                "k": self.k_current,
                "k_trajectory": list(self.k_trajectory),
                "last_iteration": dict(self.last_iteration),
                "job": self.job_name,
                "job_attempt": self.job_attempt,
                "jobs_ok": self.jobs_ok,
                "jobs_failed": self.jobs_failed,
                "phase": self.phase_name,
                "phase_tasks_done": self.phase_tasks_done,
                "phase_tasks_total": self.phase_tasks_total,
                "simulated_seconds": self.simulated_seconds,
                "max_heap_fraction": self.max_heap_fraction,
                "job_retries": self.job_retries,
                "events": dict(self.event_counts),
                "counters": self.counters.as_dict(),
                "slo_breaches": [dict(b) for b in self.breaches],
                "anomalies": [dict(a) for a in self.anomalies],
                "anomaly_counts": dict(self.anomaly_counts),
            }
            if self.node_status:
                snap["node_health"] = {
                    "nodes": {
                        str(node): status
                        for node, status in sorted(self.node_status.items())
                    },
                    "capacity": dict(self.node_capacity),
                }
        snap["wall_seconds"] = self.wall_seconds(now)
        snap["eta_simulated_seconds"] = self.eta_simulated_seconds()
        return snap


class TelemetrySink:
    """A journal sink that tees records into live telemetry.

    Every record goes to ``inner`` first (the durable journal — a
    :class:`FileJournalSink`, or a null sink when the run wants live
    telemetry without a journal file), then into the
    :class:`LiveRunState`, then past the optional anomaly detectors,
    SLO watchdog, renderer and listeners. Apart from the anomaly
    watchdog's deterministic firings, telemetry consumers never emit
    records of their own, so the journal a telemetry run writes is
    byte-identical to the one a plain run writes plus exactly the
    anomaly events the detectors derive.
    """

    enabled = True

    def __init__(
        self,
        inner: "JournalSink | None" = None,
        state: "LiveRunState | None" = None,
        watchdog=None,
        renderer: "LiveRenderer | None" = None,
        server: "MetricsServer | None" = None,
        listeners=(),
        anomaly=None,
    ):
        self.inner = inner if inner is not None else NullJournalSink()
        self.state = state if state is not None else LiveRunState()
        self.watchdog = watchdog
        self.renderer = renderer
        self.server = server
        self.listeners = list(listeners)
        # The in-flight anomaly watchdog (set after the journal exists
        # — it emits its firings back through the journal, nested
        # behind the record that triggered them, so anomaly events are
        # the one sanctioned exception to "telemetry never emits").
        self.anomaly = anomaly

    def emit(self, record: dict) -> None:
        if self.inner.enabled:
            self.inner.emit(record)
        self.state.consume(record)
        if self.anomaly is not None:
            self.anomaly.observe_record(record)
        if self.watchdog is not None:
            self.watchdog.observe(self.state)
        if self.renderer is not None:
            self.renderer.update(self.state, record)
        for listener in self.listeners:
            listener(record, self.state)

    def task_progress(self, phase: str, done: int, total: int) -> None:
        """Sub-phase completion tick (called by the runtime's executors)."""
        self.state.progress(phase, done, total)
        if self.renderer is not None:
            self.renderer.update(self.state, None)

    def close(self) -> None:
        if self.renderer is not None:
            self.renderer.finish(self.state)
        self.inner.close()


# -- TTY progress rendering ----------------------------------------------


class LiveRenderer:
    """Renders :class:`LiveRunState` to a terminal as the run advances.

    On a TTY the status block is repainted in place (cursor-up + clear)
    and throttled to ``min_interval`` seconds, except on iteration and
    run boundaries which always paint. On a non-TTY stream (CI logs,
    pipes) it degrades to one plain status line per iteration — no
    ANSI, no repaint, no flooding.
    """

    def __init__(
        self,
        stream=None,
        min_interval: float = 0.1,
        clock=time.monotonic,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = float(min_interval)
        self._clock = clock
        self._last_paint = float("-inf")
        self._painted_lines = 0
        self._isatty = bool(getattr(self.stream, "isatty", lambda: False)())

    def update(self, state: LiveRunState, record: "dict | None") -> None:
        boundary = record is not None and (
            record.get("type") == SPAN_END or record.get("type") == SPAN_START
        )
        if self._isatty:
            now = self._clock()
            if not boundary and now - self._last_paint < self.min_interval:
                return
            self._last_paint = now
            self._paint(state)
        elif record is not None and record.get("type") == SPAN_END:
            # One line per closed iteration (and the run close) only.
            from repro.observability.render import render_live_line

            kind = state._span_kinds.get(record.get("span"))
            if kind in (ITERATION, RUN):
                self.stream.write(render_live_line(state.snapshot()) + "\n")
                self.stream.flush()

    def finish(self, state: LiveRunState) -> None:
        """Final paint + newline so the shell prompt lands cleanly."""
        if self._isatty:
            self._paint(state)
            self.stream.write("\n")
            self.stream.flush()

    def _paint(self, state: LiveRunState) -> None:
        from repro.observability.render import render_live_status

        text = render_live_status(state.snapshot())
        lines = text.split("\n")
        if self._painted_lines:
            # Move to the top of the previous block and clear downward.
            self.stream.write(f"\x1b[{self._painted_lines}F\x1b[J")
        self.stream.write("\n".join(lines) + "\n")
        self.stream.flush()
        self._painted_lines = len(lines)


# -- HTTP metrics endpoint -----------------------------------------------


class MetricsServer:
    """Opt-in HTTP endpoint over a :class:`LiveRunState`.

    A stdlib :class:`ThreadingHTTPServer` on a daemon thread; routes:

    * ``/metrics`` — Prometheus text: the accounted counter totals so
      far plus the ``live_*`` gauges (scrape an in-flight run);
    * ``/healthz`` — liveness (200 ``ok``);
    * ``/state`` — the full JSON snapshot.

    ``port=0`` binds an ephemeral port (tests); the bound port is in
    ``self.port``.
    """

    def __init__(self, state: LiveRunState, port: int = 0, host: str = "127.0.0.1"):
        self.state = state
        metrics_server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # pragma: no cover - quiet
                pass

            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = metrics_server.render_metrics().encode("utf-8")
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/healthz":
                    body, ctype = b"ok\n", "text/plain; charset=utf-8"
                elif path == "/state":
                    body = (
                        json.dumps(metrics_server.state.snapshot(), default=str)
                        + "\n"
                    ).encode("utf-8")
                    ctype = "application/json"
                else:
                    self.send_error(404, "unknown path")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._server = ThreadingHTTPServer((host, int(port)), Handler)
        self.host = host
        self.port = int(self._server.server_address[1])
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def render_metrics(self) -> str:
        """The ``/metrics`` body (also handy for tests)."""
        return render_prometheus(
            self.state.counters_copy(), extra=self.state.live_gauges()
        )

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)


# -- journal tailing (repro trace --follow) ------------------------------


def follow_journal(
    path: str,
    on_update,
    interval: float = 1.0,
    sleep=time.sleep,
    max_polls: "int | None" = None,
):
    """Tail a growing journal file, re-rendering as records land.

    Polls ``path`` every ``interval`` seconds; whenever the journal has
    grown, replays the records read so far and calls
    ``on_update(replay, records)``. Reads with
    ``load_journal(strict_tail=False)``: a tailer races the file sink
    by construction, so catching it mid-write never errors — even
    between the runs of a multi-run journal, where a strict read would
    flag the half-written last line — the partial line simply shows up
    whole on the next poll. Returns the final replay when the
    top-level run span closes (or when ``max_polls`` is exhausted;
    ``None`` polls forever).

    Tolerates every transient state a racing writer can leave behind:
    a missing file, a partially-written (mid-line, even mid-character)
    trailing record, and a read that momentarily looks corrupt — the
    poll simply retries and the partial record shows up whole next
    time.
    """
    from repro.common.errors import JournalCorruptError
    from repro.observability.replay import replay_records

    seen = 0
    replay = None
    polls = 0
    while True:
        try:
            records = load_journal(path, strict_tail=False)
        except (FileNotFoundError, JournalCorruptError):
            records = []
        if len(records) > seen:
            seen = len(records)
            replay = replay_records(records)
            on_update(replay, records)
            if replay.roots and all(root.complete for root in replay.roots):
                return replay
        polls += 1
        if max_polls is not None and polls >= max_polls:
            return replay
        sleep(interval)


# -- environment wiring --------------------------------------------------

_TELEMETRY_JOURNALS: dict[tuple, Journal] = {}
_TELEMETRY_LOCK = threading.Lock()


def telemetry_requested(env) -> bool:
    """True when any live-telemetry environment switch is set."""
    from repro.observability.anomaly import ANOMALY_ENV, parse_anomaly_spec
    from repro.observability.profiling import env_flag
    from repro.observability.slo import SLO_ENV

    return bool(
        env_flag(env.get(LIVE_ENV))
        or (env.get(METRICS_PORT_ENV) or "").strip()
        or (env.get(SLO_ENV) or "").strip()
        or parse_anomaly_spec(env.get(ANOMALY_ENV)) is not None
    )

def telemetry_journal_from_env(env) -> "Journal | None":
    """The live-telemetry counterpart of :func:`~repro.observability.journal.file_journal`.

    Returns ``None`` when no live switch (``$REPRO_LIVE``,
    ``$REPRO_METRICS_PORT``, ``$REPRO_SLO``, ``$REPRO_ANOMALY``) is set
    — the caller falls back to plain journalling. Otherwise builds
    (once per configuration, shared process-wide so every runtime a run
    constructs feeds one aggregate) a journal whose sink tees into a
    fresh :class:`LiveRunState` with the requested renderer, metrics
    server, SLO watchdog and anomaly detectors attached. The metrics
    endpoint's bound address is announced on stderr once.
    """
    from repro.observability.anomaly import (
        ANOMALY_ENV,
        AnomalyWatchdog,
        parse_anomaly_spec,
    )
    from repro.observability.profiling import env_flag
    from repro.observability.slo import SLO_ENV, SLOWatchdog, parse_slo_rules

    if not telemetry_requested(env):
        return None
    path = (env.get(JOURNAL_ENV) or "").strip()
    live = env_flag(env.get(LIVE_ENV))
    port = (env.get(METRICS_PORT_ENV) or "").strip()
    slo_spec = (env.get(SLO_ENV) or "").strip()
    anomaly_spec = (env.get(ANOMALY_ENV) or "").strip()
    key = (
        os.path.abspath(path) if path else "",
        live,
        port,
        slo_spec,
        anomaly_spec,
    )
    with _TELEMETRY_LOCK:
        journal = _TELEMETRY_JOURNALS.get(key)
        if journal is not None:
            return journal
        inner = FileJournalSink(key[0]) if path else NullJournalSink()
        state = LiveRunState()
        watchdog = SLOWatchdog(parse_slo_rules(slo_spec)) if slo_spec else None
        renderer = LiveRenderer() if live else None
        server = MetricsServer(state, port=int(port)) if port else None
        if server is not None:
            print(
                f"[repro] live metrics endpoint on {server.url} "
                "(/metrics /healthz /state)",
                file=sys.stderr,
            )
        journal = Journal(
            TelemetrySink(
                inner,
                state=state,
                watchdog=watchdog,
                renderer=renderer,
                server=server,
            )
        )
        anomaly_config = parse_anomaly_spec(anomaly_spec)
        if anomaly_config is not None:
            # Bound after construction: the watchdog emits back through
            # the journal it observes.
            journal.sink.anomaly = AnomalyWatchdog(journal, anomaly_config)
        _TELEMETRY_JOURNALS[key] = journal
        return journal
