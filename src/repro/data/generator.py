"""Synthetic Gaussian-mixture dataset generators.

The paper evaluates on synthetic datasets "generated using a Gaussian
distribution": 10M points in R^10 with 100-1600 clusters for the
scaling experiments, a 100M-point/1000-cluster set for node scaling,
and a small 10-cluster set in R^2 (coordinates roughly in [0, 100])
for the Figure 1 / Figure 4 illustrations. These generators produce the
same families at configurable scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.common.validation import check_positive


@dataclass(frozen=True)
class GaussianMixture:
    """A generated dataset: points plus its ground truth."""

    points: np.ndarray
    labels: np.ndarray
    centers: np.ndarray
    cluster_std: float

    @property
    def n_points(self) -> int:
        return self.points.shape[0]

    @property
    def dimensions(self) -> int:
        return self.points.shape[1]

    @property
    def n_clusters(self) -> int:
        return self.centers.shape[0]


def _sample_centers(
    k: int,
    dim: int,
    low: float,
    high: float,
    min_separation: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Rejection-sample ``k`` centers at pairwise distance >= separation."""
    centers = np.empty((k, dim))
    placed = 0
    attempts = 0
    max_attempts = 1000 * k
    while placed < k:
        attempts += 1
        if attempts > max_attempts:
            raise ConfigurationError(
                f"could not place {k} centers with min_separation="
                f"{min_separation} in [{low}, {high}]^{dim}; "
                "loosen the separation or enlarge the box"
            )
        candidate = rng.uniform(low, high, size=dim)
        if placed > 0 and min_separation > 0:
            d = np.linalg.norm(centers[:placed] - candidate, axis=1)
            if d.min() < min_separation:
                continue
        centers[placed] = candidate
        placed += 1
    return centers


def generate_gaussian_mixture(
    n_points: int,
    n_clusters: int,
    dimensions: int,
    rng=None,
    center_low: float = 0.0,
    center_high: float = 100.0,
    cluster_std: float = 1.0,
    min_separation: float | None = None,
    weights: np.ndarray | None = None,
) -> GaussianMixture:
    """Generate an isotropic Gaussian mixture.

    ``min_separation`` defaults to ``6 * cluster_std`` — well-separated
    clusters, as in the paper's synthetic datasets (whose true k the
    algorithm is expected to recover). ``weights`` gives non-uniform
    cluster sizes; the default is uniform.
    """
    check_positive("n_points", n_points)
    check_positive("n_clusters", n_clusters)
    check_positive("dimensions", dimensions)
    check_positive("cluster_std", cluster_std)
    if n_points < n_clusters:
        raise ConfigurationError(
            f"need at least one point per cluster: n_points={n_points} "
            f"< n_clusters={n_clusters}"
        )
    rng = ensure_rng(rng)
    if min_separation is None:
        min_separation = 6.0 * cluster_std
    centers = _sample_centers(
        n_clusters, dimensions, center_low, center_high, min_separation, rng
    )
    if weights is None:
        probs = np.full(n_clusters, 1.0 / n_clusters)
    else:
        probs = np.asarray(weights, dtype=np.float64)
        if probs.shape != (n_clusters,) or np.any(probs < 0) or probs.sum() == 0:
            raise ConfigurationError(
                f"weights must be {n_clusters} non-negative values, got {weights!r}"
            )
        probs = probs / probs.sum()
    labels = rng.choice(n_clusters, size=n_points, p=probs)
    _ensure_coverage(labels, n_clusters, rng)
    noise = rng.standard_normal((n_points, dimensions)) * cluster_std
    points = centers[labels] + noise
    return GaussianMixture(
        points=points, labels=labels, centers=centers, cluster_std=cluster_std
    )


def _ensure_coverage(labels: np.ndarray, k: int, rng: np.random.Generator) -> None:
    """Reassign points so every cluster id in [0, k) appears at least
    once, only ever taking points from clusters that keep >= 1 member."""
    counts = np.bincount(labels, minlength=k)
    for c in np.flatnonzero(counts == 0):
        donors = np.flatnonzero(counts >= 2)
        donor = donors[rng.integers(donors.size)]
        victim = rng.choice(np.flatnonzero(labels == donor))
        labels[victim] = c
        counts[donor] -= 1
        counts[c] += 1


def demo_r2_dataset(
    n_points: int = 5000, rng=None, cluster_std: float = 2.5
) -> GaussianMixture:
    """The 10-cluster R^2 illustration dataset of Figures 1 and 4.

    Coordinates land roughly in [0, 100] x [0, 100] as in the paper's
    plots.
    """
    return generate_gaussian_mixture(
        n_points=n_points,
        n_clusters=10,
        dimensions=2,
        rng=rng,
        center_low=5.0,
        center_high=95.0,
        cluster_std=cluster_std,
        min_separation=8.0 * cluster_std,
    )


def paper_family_dataset(
    n_clusters: int,
    n_points: int,
    rng=None,
    dimensions: int = 10,
    std_range: tuple[float, float] = (0.5, 2.0),
    separation_factor: float = 4.0,
) -> GaussianMixture:
    """A member of the paper's d100...d1600 family, at chosen scale.

    The paper uses 10M Gaussian points in R^10 with 100-1600 clusters
    and reports that G-means consistently *overestimates* k by ~1.5x.
    That behaviour requires realistically heterogeneous clusters:
    per-cluster standard deviations are drawn from ``std_range`` and
    the center cloud is rescaled so the closest pair of clusters sits
    at ``separation_factor`` (average) standard deviations — close
    enough that Voronoi truncation between unequal neighbours makes
    projections measurably non-normal, which is what drives the
    overshoot (uniform, far-separated clusters are recovered almost
    exactly instead). Pass a scaled-down ``n_points`` to run the same
    experiment shape on one machine.
    """
    check_positive("n_clusters", n_clusters)
    check_positive("n_points", n_points)
    if not 0 < std_range[0] <= std_range[1]:
        raise ConfigurationError(
            f"std_range must satisfy 0 < low <= high, got {std_range!r}"
        )
    check_positive("separation_factor", separation_factor)
    rng = ensure_rng(rng)
    stds = rng.uniform(std_range[0], std_range[1], size=n_clusters)
    # Grouped placement: clusters come in small neighbourhoods (2-3
    # members) whose internal gaps sit at ~separation_factor combined
    # standard deviations, while the neighbourhoods themselves are far
    # apart. Local packing density is then independent of k, so the
    # overestimation ratio stays roughly constant across the family,
    # as in the paper's Table 1 (far-separated uniform clusters are
    # recovered almost exactly instead, and densely chained clusters
    # blur into aggregates whose projections pass the normality test).
    group_size = 3
    n_groups = max(1, (n_clusters + group_size - 1) // group_size)
    max_std = float(stds.max())
    site_gap = 3.0 * separation_factor * max_std
    sites = _sample_centers(
        n_groups,
        dimensions,
        0.0,
        site_gap * max(2.0, n_groups ** (1.0 / dimensions) * 2.0),
        site_gap,
        rng,
    )
    centers = np.zeros((n_clusters, dimensions))
    for i in range(n_clusters):
        group = i // group_size
        first = group * group_size
        if i == first:
            centers[i] = sites[group]
            continue
        anchor = int(rng.integers(first, i))
        direction = rng.standard_normal(dimensions)
        direction /= np.linalg.norm(direction)
        gap = (
            separation_factor
            * 0.5
            * (stds[i] + stds[anchor])
            * rng.uniform(0.9, 1.4)
        )
        centers[i] = centers[anchor] + direction * gap
    probs = np.full(n_clusters, 1.0 / n_clusters)
    labels = rng.choice(n_clusters, size=n_points, p=probs)
    _ensure_coverage(labels, n_clusters, rng)
    noise = rng.standard_normal((n_points, dimensions)) * stds[labels][:, None]
    points = centers[labels] + noise
    return GaussianMixture(
        points=points,
        labels=labels,
        centers=centers,
        cluster_std=float(stds.mean()),
    )
