"""Placing datasets on (and reading them back from) the simulated DFS.

Two storage modes are provided:

* :func:`write_points` — the fast path used by experiments: splits hold
  numpy row blocks, while byte accounting uses the paper's text-size
  model (:func:`repro.data.textio.bytes_per_record`);
* :func:`write_points_as_text` — full-fidelity mode: splits hold actual
  text lines, exercising the codec end to end (used by small examples
  and the codec integration tests).
"""

from __future__ import annotations

import numpy as np

from repro.common.validation import check_points
from repro.data.textio import bytes_per_record, decode_points, encode_points
from repro.mapreduce.hdfs import DFSFile, InMemoryDFS


def write_points(
    dfs: InMemoryDFS,
    name: str,
    points: np.ndarray,
    replication: int = 3,
    overwrite: bool = False,
) -> DFSFile:
    """Store a point matrix under ``name`` (numpy blocks, text-size
    accounting)."""
    pts = check_points(points)
    return dfs.write(
        name,
        pts,
        bytes_per_record=bytes_per_record(pts.shape[1]),
        replication=replication,
        overwrite=overwrite,
    )


def write_points_as_text(
    dfs: InMemoryDFS,
    name: str,
    points: np.ndarray,
    replication: int = 3,
    overwrite: bool = False,
) -> DFSFile:
    """Store a point matrix as actual text lines (full-fidelity mode)."""
    pts = check_points(points)
    lines = encode_points(pts)
    actual = max(len(line) + 1 for line in lines)  # +1 for the newline
    return dfs.write(
        name, lines, bytes_per_record=actual, replication=replication,
        overwrite=overwrite,
    )


def read_points(dfs: InMemoryDFS, name: str) -> np.ndarray:
    """Read a dataset back into an ``(n, d)`` matrix (either mode)."""
    records = dfs.read_all(name)
    if isinstance(records, np.ndarray):
        return records
    return decode_points(list(records))
