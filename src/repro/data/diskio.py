"""Local-filesystem dataset I/O.

Datasets live in the in-memory DFS during simulation, but a real
workflow needs them on disk: export a generated mixture for another
tool, or import a CSV-like points file somebody else produced. Files
use the same one-point-per-line text format as the codec
(:mod:`repro.data.textio`), with an optional ``#``-comment header and
transparent gzip (by file suffix).
"""

from __future__ import annotations

import gzip
import pathlib

import numpy as np

from repro.common.errors import DataFormatError
from repro.common.validation import check_points
from repro.data.loader import write_points
from repro.data.textio import decode_point, encode_points
from repro.mapreduce.hdfs import DFSFile, InMemoryDFS


def _open_text(path: pathlib.Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_points_file(
    path: "str | pathlib.Path",
    points: np.ndarray,
    header: str | None = None,
) -> pathlib.Path:
    """Write a point matrix to a text (or ``.gz``) file.

    One encoded point per line; ``header`` (if given) is written as
    leading ``#`` comment lines.
    """
    pts = check_points(points)
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with _open_text(out, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for line in encode_points(pts):
            handle.write(line + "\n")
    return out


def load_points_file(path: "str | pathlib.Path") -> np.ndarray:
    """Read a points file written by :func:`save_points_file` (or any
    compatible one-point-per-line text file)."""
    src = pathlib.Path(path)
    if not src.exists():
        raise DataFormatError(f"no such points file: {src}")
    rows: list[np.ndarray] = []
    with _open_text(src, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                rows.append(decode_point(stripped))
            except DataFormatError as err:
                raise DataFormatError(
                    f"{src}:{line_number}: {err}"
                ) from err
    if not rows:
        raise DataFormatError(f"points file {src} holds no data lines")
    widths = {row.size for row in rows}
    if len(widths) != 1:
        raise DataFormatError(
            f"{src}: inconsistent record widths {sorted(widths)}"
        )
    return np.vstack(rows)


def import_points_file(
    dfs: InMemoryDFS,
    name: str,
    path: "str | pathlib.Path",
    overwrite: bool = False,
) -> DFSFile:
    """Load a points file from disk straight into the DFS."""
    points = load_points_file(path)
    return write_points(dfs, name, points, overwrite=overwrite)
