"""Text codec for point records.

Hadoop jobs in the paper read points as text lines; the paper's memory
model assumes "a string of approximatively 15 characters" (the number
of significant decimal digits of an IEEE 754 double) per coordinate,
about 16 bytes per coordinate once the separator is included. That
byte model — :func:`bytes_per_record` — drives all I/O accounting in
the simulation, while the codec itself defaults to 17 significant
digits so that encode/decode round-trips are bit-exact.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import DataFormatError
from repro.common.validation import check_positive

#: Significant digits written per coordinate. 17 guarantees an exact
#: float64 round-trip (the paper's estimate of 15 is what the byte
#: model uses).
DEFAULT_PRECISION = 17

#: The paper's accounting: ~15 chars per coordinate + 1 separator.
BYTES_PER_COORDINATE = 16

#: Field separator within one point record.
SEPARATOR = ","


def bytes_per_record(dimensions: int) -> int:
    """On-disk size the cost model charges per point in ``dimensions``-D."""
    check_positive("dimensions", dimensions)
    return BYTES_PER_COORDINATE * dimensions


def encode_point(point: np.ndarray, precision: int = DEFAULT_PRECISION) -> str:
    """Serialise one point as a separator-joined decimal line."""
    vec = np.asarray(point, dtype=np.float64).ravel()
    if vec.size == 0:
        raise DataFormatError("cannot encode an empty point")
    return SEPARATOR.join(f"{x:.{precision}g}" for x in vec)


def decode_point(line: str, dimensions: int | None = None) -> np.ndarray:
    """Parse one text line back into a point.

    ``dimensions`` (when given) validates the coordinate count —
    malformed records fail loudly instead of corrupting a cluster.
    """
    parts = line.strip().split(SEPARATOR)
    if parts == [""]:
        raise DataFormatError("cannot decode an empty line")
    try:
        vec = np.array([float(p) for p in parts], dtype=np.float64)
    except ValueError as err:
        raise DataFormatError(f"malformed point record {line!r}: {err}") from err
    if not np.all(np.isfinite(vec)):
        raise DataFormatError(f"non-finite coordinate in record {line!r}")
    if dimensions is not None and vec.size != dimensions:
        raise DataFormatError(
            f"expected {dimensions} coordinates, got {vec.size} in {line!r}"
        )
    return vec


def encode_points(
    points: np.ndarray, precision: int = DEFAULT_PRECISION
) -> list[str]:
    """Serialise a point matrix, one line per row."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise DataFormatError(f"points must be 2-D, got shape {pts.shape}")
    return [encode_point(row, precision) for row in pts]


def decode_points(lines: "list[str]", dimensions: int | None = None) -> np.ndarray:
    """Parse many text lines into an ``(n, d)`` matrix."""
    if len(lines) == 0:
        raise DataFormatError("cannot decode an empty line list")
    rows = [decode_point(line, dimensions) for line in lines]
    widths = {row.size for row in rows}
    if len(widths) != 1:
        raise DataFormatError(f"inconsistent record widths: {sorted(widths)}")
    return np.vstack(rows)
