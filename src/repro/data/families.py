"""Stress-test dataset families beyond the paper's isotropic mixtures.

G-means' model is "every cluster is a spherical Gaussian"; these
generators deliberately violate that assumption in controlled ways so
the test suite (and the cluster-shapes ablation) can document how the
algorithm degrades:

* :func:`noisy_mixture` — a Gaussian mixture plus a uniform background
  of outliers (label ``-1``);
* :func:`anisotropic_mixture` — full-covariance Gaussian clusters with
  a controlled condition number (elongated ellipsoids);
* :func:`uniform_ball_mixture` — clusters drawn uniformly from balls:
  compact and well separated, but decisively non-Gaussian, which makes
  G-means over-split them (a known property of the algorithm).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import ensure_rng
from repro.common.validation import check_in_range, check_positive
from repro.data.generator import GaussianMixture, generate_gaussian_mixture


def noisy_mixture(
    n_points: int,
    n_clusters: int,
    dimensions: int,
    noise_fraction: float = 0.1,
    rng=None,
    **mixture_kwargs,
) -> GaussianMixture:
    """Gaussian mixture with a uniform-background outlier fraction.

    Outliers carry label ``-1`` and are scattered uniformly over a box
    that extends 20% beyond the clusters' bounding box.
    """
    check_in_range("noise_fraction", noise_fraction, 0.0, 0.9)
    rng = ensure_rng(rng)
    n_noise = int(round(n_points * noise_fraction))
    n_clustered = n_points - n_noise
    if n_clustered < n_clusters:
        raise ConfigurationError(
            f"noise_fraction={noise_fraction} leaves {n_clustered} points "
            f"for {n_clusters} clusters"
        )
    base = generate_gaussian_mixture(
        n_clustered, n_clusters, dimensions, rng=rng, **mixture_kwargs
    )
    if n_noise == 0:
        return base
    low = base.points.min(axis=0)
    high = base.points.max(axis=0)
    pad = 0.2 * (high - low + 1e-12)
    noise = rng.uniform(low - pad, high + pad, size=(n_noise, dimensions))
    points = np.vstack([base.points, noise])
    labels = np.concatenate(
        [base.labels, np.full(n_noise, -1, dtype=np.int64)]
    )
    order = rng.permutation(points.shape[0])
    return GaussianMixture(
        points=points[order],
        labels=labels[order],
        centers=base.centers,
        cluster_std=base.cluster_std,
    )


def anisotropic_mixture(
    n_points: int,
    n_clusters: int,
    dimensions: int,
    condition_number: float = 8.0,
    rng=None,
    center_low: float = 0.0,
    center_high: float = 100.0,
    min_separation: float | None = None,
) -> GaussianMixture:
    """Full-covariance Gaussian clusters with controlled elongation.

    Each cluster gets a random orthonormal basis and axis standard
    deviations log-spaced between 1 and ``condition_number`` (so the
    longest axis is ``condition_number`` times the shortest).
    """
    check_positive("n_points", n_points)
    check_positive("n_clusters", n_clusters)
    check_positive("dimensions", dimensions)
    if condition_number < 1.0:
        raise ConfigurationError(
            f"condition_number must be >= 1, got {condition_number}"
        )
    rng = ensure_rng(rng)
    if min_separation is None:
        min_separation = 6.0 * condition_number
    base = generate_gaussian_mixture(
        n_points,
        n_clusters,
        dimensions,
        rng=rng,
        center_low=center_low,
        center_high=center_high,
        cluster_std=1.0,
        min_separation=min_separation,
    )
    points = np.empty_like(base.points)
    axis_stds = np.logspace(0, np.log10(condition_number), dimensions)
    for c in range(n_clusters):
        mask = base.labels == c
        count = int(mask.sum())
        # Random orthonormal basis via QR of a Gaussian matrix.
        q, _ = np.linalg.qr(rng.standard_normal((dimensions, dimensions)))
        local = rng.standard_normal((count, dimensions)) * axis_stds
        points[mask] = base.centers[c] + local @ q.T
    return GaussianMixture(
        points=points,
        labels=base.labels,
        centers=base.centers,
        cluster_std=float(axis_stds.mean()),
    )


def uniform_ball_mixture(
    n_points: int,
    n_clusters: int,
    dimensions: int,
    radius: float = 3.0,
    rng=None,
    center_low: float = 0.0,
    center_high: float = 100.0,
) -> GaussianMixture:
    """Clusters drawn uniformly from balls of the given radius.

    Compact and separable, but the projections G-means tests are far
    from Gaussian, so the algorithm splits them — the canonical
    demonstration that G-means estimates "number of Gaussians", not
    "number of blobs".
    """
    check_positive("radius", radius)
    rng = ensure_rng(rng)
    base = generate_gaussian_mixture(
        n_points,
        n_clusters,
        dimensions,
        rng=rng,
        center_low=center_low,
        center_high=center_high,
        cluster_std=1.0,
        min_separation=6.0 * radius,
    )
    n = base.points.shape[0]
    directions = rng.standard_normal((n, dimensions))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    radii = radius * rng.random(n) ** (1.0 / dimensions)
    points = base.centers[base.labels] + directions * radii[:, None]
    return GaussianMixture(
        points=points,
        labels=base.labels,
        centers=base.centers,
        cluster_std=radius / 2.0,
    )
