"""Dataset generation and I/O.

Synthetic Gaussian-mixture generators reproducing the paper's dataset
families (d100...d1600 in R^10 and the 10-cluster R^2 demo set), the
text codec whose byte model the paper assumes (~15 characters per
coordinate), and loaders that place datasets on the simulated DFS.
"""

from repro.data.diskio import (
    import_points_file,
    load_points_file,
    save_points_file,
)
from repro.data.families import (
    anisotropic_mixture,
    noisy_mixture,
    uniform_ball_mixture,
)
from repro.data.generator import (
    GaussianMixture,
    generate_gaussian_mixture,
    demo_r2_dataset,
    paper_family_dataset,
)
from repro.data.textio import (
    DEFAULT_PRECISION,
    bytes_per_record,
    decode_point,
    decode_points,
    encode_point,
    encode_points,
)
from repro.data.loader import read_points, write_points, write_points_as_text

__all__ = [
    "import_points_file",
    "load_points_file",
    "save_points_file",
    "anisotropic_mixture",
    "noisy_mixture",
    "uniform_ball_mixture",
    "GaussianMixture",
    "generate_gaussian_mixture",
    "demo_r2_dataset",
    "paper_family_dataset",
    "DEFAULT_PRECISION",
    "bytes_per_record",
    "decode_point",
    "decode_points",
    "encode_point",
    "encode_points",
    "read_points",
    "write_points",
    "write_points_as_text",
]
