"""Command-line interface: run any paper experiment or ablation.

::

    python -m repro list
    python -m repro experiment table1
    python -m repro experiment fig3 --out fig3.txt
    python -m repro ablation kmeans_iterations
    python -m repro all --out-dir reports/
    python -m repro experiment table1 --journal run.jsonl
    python -m repro experiment table1 --live --metrics-port 8787
    python -m repro experiment table1 --profile-tasks --journal run.jsonl
    python -m repro experiment table1 --slo max_k=64,warn:max_wall_seconds=600
    python -m repro trace run.jsonl --gantt --metrics
    python -m repro trace run.jsonl --follow
    python -m repro trace run.jsonl --format chrome --out run.trace.json
    python -m repro whatif run.jsonl --set num_workers=8 --set combiner=off
    python -m repro analyze run.jsonl
    python -m repro diff baseline.jsonl run.jsonl --max-time-regression 0.1
    python -m repro report runs/ --out-dir reports/
    python -m repro experiment table1 --journal run.jsonl --anomaly
    python -m repro anomalies run.jsonl --check

Every run is deterministic (the experiments carry their own seeds);
the printed report is the same paper-vs-measured text the benchmark
suite archives. Live telemetry (``--live`` / ``--metrics-port`` /
``--profile-tasks`` / ``--slo``) only observes a run — results and
canonical journals are byte-identical with it on or off. ``--anomaly``
arms the in-flight detectors, which *do* journal their firings — but
from simulated quantities only, so those journals are byte-identical
across backends too, and ``repro anomalies --check`` re-derives every
firing exactly.

Exit codes: 0 success, 1 command failure, 2 usage, 3 SLO abort
(a ``--slo`` rule breached and the run checkpointed then stopped).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys


from repro.core.config import CHECKPOINT_DIR_ENV, RESUME_ENV
from repro.evaluation.registry import ABLATIONS, DESCRIPTIONS, EXPERIMENTS
from repro.mapreduce.executors import (
    DATA_PLANE_ENV,
    DATA_PLANE_KINDS,
    EXECUTOR_ENV,
    EXECUTOR_KINDS,
    MAX_JOB_RETRIES_ENV,
    NUM_WORKERS_ENV,
)
from repro.mapreduce.nodes import (
    HEARTBEAT_TIMEOUT_ENV,
    NODE_FAILURE_PROB_ENV,
    NODE_RECOVERY_PROB_ENV,
)
from repro.observability.anomaly import ANOMALY_ENV
from repro.observability.journal import JOURNAL_ENV
from repro.observability.live import LIVE_ENV, METRICS_PORT_ENV
from repro.observability.profiling import PROFILE_TASKS_ENV
from repro.observability.slo import SLO_ENV

#: ``--slo`` rule breaches abort with this exit code, so operators and
#: CI can tell a clean SLO abort (resumable: the breached iteration's
#: checkpoint was written first) from a crash.
EXIT_SLO_BREACH = 3


def _emit(result, out: "str | None") -> None:
    print(result.text)
    if out:
        path = pathlib.Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(result.text + "\n")
        print(f"\n[written to {path}]", file=sys.stderr)


def _cmd_list(_args) -> int:
    print("experiments (python -m repro experiment <name>):")
    for name in EXPERIMENTS:
        print(f"  {name:<24}{DESCRIPTIONS[name]}")
    print()
    print("ablations (python -m repro ablation <name>):")
    for name in ABLATIONS:
        print(f"  {name:<24}{DESCRIPTIONS[name]}")
    return 0


def _cmd_experiment(args) -> int:
    result = EXPERIMENTS[args.name]()
    _emit(result, args.out)
    return 0


def _cmd_ablation(args) -> int:
    result = ABLATIONS[args.name]()
    _emit(result, args.out)
    return 0


def _cmd_all(args) -> int:
    out_dir = pathlib.Path(args.out_dir) if args.out_dir else None
    for name, fn in {**EXPERIMENTS, **ABLATIONS}.items():
        print(f"=== {name} " + "=" * max(0, 60 - len(name)))
        result = fn()
        print(result.text)
        print()
        if out_dir:
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{name}.txt").write_text(result.text + "\n")
    return 0


def _cmd_report(args) -> int:
    if args.rundir:
        from repro.observability import RegistryError
        from repro.observability import write_report as write_dashboard

        try:
            written = write_dashboard(
                args.rundir,
                out_dir=args.out_dir,
                basename=args.basename,
                with_html=not args.no_html,
            )
        except RegistryError as exc:
            print(f"cannot build registry report: {exc}", file=sys.stderr)
            return 1
        for kind, path in sorted(written.items()):
            print(f"{kind}: {path}")
        return 0

    from repro.evaluation.report import write_report

    path = write_report(
        args.out,
        names=args.only or None,
        progress=lambda name: print(f"running {name} ...", file=sys.stderr),
    )
    print(f"report written to {path}")
    return 0


def _load_replay(path: str):
    """Replay a journal file, or print a clear error and return None.

    Truncated final records (a run killed mid-write) are tolerated by
    the loader itself; what surfaces here is a missing/unreadable file
    or corruption elsewhere in the stream.
    """
    from repro.common.errors import JournalCorruptError
    from repro.observability import replay_journal

    try:
        return replay_journal(path)
    except (OSError, JournalCorruptError) as exc:
        print(f"cannot read journal: {exc}", file=sys.stderr)
        return None


def _write_out(text: str, out: "str | None") -> None:
    if out:
        path = pathlib.Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
        print(f"\n[written to {path}]", file=sys.stderr)


def _cmd_trace(args) -> int:
    from repro.observability import render_trace

    if args.follow:
        from repro.observability.live import follow_journal

        def on_update(replay, records) -> None:
            iterations = len([s for s in replay.iterations() if s.complete])
            jobs = len(replay.successful_jobs())
            done = bool(replay.roots) and all(r.complete for r in replay.roots)
            print(
                f"[follow] {len(records)} records  iterations={iterations}  "
                f"jobs={jobs}  {'complete' if done else 'running'}",
                file=sys.stderr,
            )

        replay = follow_journal(
            args.journal_path, on_update, interval=args.interval
        )
        if replay is None:
            print(f"cannot read journal: {args.journal_path}", file=sys.stderr)
            return 1
    else:
        replay = _load_replay(args.journal_path)
        if replay is None:
            return 1
    if args.format == "chrome":
        from repro.observability import render_chrome_trace

        text = render_chrome_trace(replay)
    else:
        text = render_trace(
            replay,
            gantt=args.gantt,
            metrics=args.metrics,
            width=args.width,
        )
    print(text)
    _write_out(text, args.out)
    return 0


def _cmd_analyze(args) -> int:
    import json

    from repro.observability import analyze_replay, render_analysis

    replay = _load_replay(args.journal_path)
    if replay is None:
        return 1
    report = analyze_replay(replay)
    text = (
        json.dumps(report.as_dict(), indent=2)
        if args.json
        else render_analysis(report)
    )
    print(text)
    _write_out(text, args.out)
    if not report.heap_audit_consistent:
        print(
            "heap-model audit found decisions inconsistent with their "
            "recorded inputs",
            file=sys.stderr,
        )
        return 1
    if report.critical is not None and not report.critical.reconciled:
        print(
            "critical path does not reconcile with the journalled "
            "simulated makespan",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_anomalies(args) -> int:
    import json

    from repro.common.errors import JournalCorruptError
    from repro.observability import (
        AnomalyConfig,
        detect_anomalies,
        load_journal,
        recorded_anomaly_config,
        reconcile_anomalies,
        render_anomalies,
        render_reconciliation,
    )

    try:
        records = load_journal(args.journal_path)
    except (OSError, JournalCorruptError) as exc:
        print(f"cannot read journal: {exc}", file=sys.stderr)
        return 1

    if args.check:
        # Exact replay reconciliation: the journal's own recorded
        # config drives the detectors, and every live-emitted event
        # must re-derive bit-for-bit (seq, parent, attrs).
        outcome = reconcile_anomalies(records)
        if outcome.config is None:
            print(
                "journal carries no anomaly_config event; run with "
                "--anomaly to arm the detectors",
                file=sys.stderr,
            )
            return 1
        text = (
            json.dumps(outcome.as_dict(), indent=2)
            if args.json
            else render_reconciliation(outcome)
        )
        print(text)
        _write_out(text, args.out)
        return 0 if outcome.ok else 1

    # Post-hoc detection: works on any journal, detectors armed or not.
    config = recorded_anomaly_config(records) or AnomalyConfig()
    found = detect_anomalies(records, config)
    if args.json:
        text = json.dumps(
            {"config": config.as_dict(), "anomalies": found}, indent=2
        )
    else:
        text = render_anomalies(found, config)
    print(text)
    _write_out(text, args.out)
    return 0


def _cmd_whatif(args) -> int:
    import json

    from repro.observability import (
        ScenarioError,
        parse_scenario,
        render_whatif,
        whatif_replay,
    )

    try:
        scenario = parse_scenario(args.set or [])
    except ScenarioError as exc:
        print(f"bad --set: {exc}", file=sys.stderr)
        return 2
    replay = _load_replay(args.journal_path)
    if replay is None:
        return 1
    report = whatif_replay(replay, scenario)
    text = (
        json.dumps(report.as_dict(), indent=2)
        if args.json
        else render_whatif(report)
    )
    print(text)
    _write_out(text, args.out)
    return 0


def _cmd_diff(args) -> int:
    import json

    from repro.observability import DiffThresholds, diff_replays, render_diff

    baseline = _load_replay(args.baseline)
    candidate = _load_replay(args.candidate) if baseline is not None else None
    if baseline is None or candidate is None:
        return 2
    thresholds = DiffThresholds(
        max_time_regression=args.max_time_regression,
        max_counter_regression=args.max_counter_regression,
        allow_k_drift=args.allow_k_drift,
    )
    report = diff_replays(
        baseline,
        candidate,
        thresholds,
        baseline_path=args.baseline,
        candidate_path=args.candidate,
    )
    text = (
        json.dumps(report.as_dict(), indent=2)
        if args.json
        else render_diff(report)
    )
    print(text)
    _write_out(text, args.out)
    return 0 if report.ok else 1


def _cmd_ablate(args) -> int:
    import json

    from repro.observability.ablate import (
        AblationError,
        WorkloadSpec,
        load_importance,
        render_importance,
        run_ablation,
        verify_importance,
        write_importance,
    )
    from repro.observability.components import ComponentError, MANIFEST

    if args.list_components:
        for comp in MANIFEST:
            flips = ", ".join(comp.label(v) for v in comp.flips)
            kind = "engine" if comp.engine else "evaluation-only"
            print(
                f"{comp.name:<22}{comp.layer:<16}{kind:<17}"
                f"baseline={comp.label(comp.baseline)!s:<18}flips: {flips}"
            )
        return 0

    report_path = os.path.join(args.out_dir, f"{args.basename}.json")
    if args.check:
        try:
            report = load_importance(report_path)
        except (OSError, AblationError, ValueError) as exc:
            print(f"cannot load importance report: {exc}", file=sys.stderr)
            return 2
        problems = verify_importance(report)
        if problems:
            for problem in problems:
                print(f"FAIL {problem}")
            return 1
        print(
            f"{report_path}: every delta reconciles exactly with its "
            f"journal ({len(report['variants'])} variants)"
        )
        return 0

    spec = WorkloadSpec(n_points=args.points, data_seed=args.seed, seed=args.seed)
    journal_dir = args.journal_dir or os.path.join(args.out_dir, "ablate")
    try:
        report = run_ablation(
            spec, journal_dir=journal_dir, components=args.components or None
        )
    except ComponentError as exc:
        print(f"bad --components: {exc.args[0]}", file=sys.stderr)
        return 2
    written = write_importance(report, out_dir=args.out_dir, basename=args.basename)
    text = (
        json.dumps(report.as_dict(), indent=2, sort_keys=True)
        if args.json
        else render_importance(report)
    )
    print(text)
    for kind, path in sorted(written.items()):
        print(f"{kind}: {path}", file=sys.stderr)
    if args.bench_json:
        from repro.evaluation.benchjson import merge_bench_json

        merge_bench_json(
            args.bench_json,
            "ablation_importance",
            workload=report.spec.as_dict(),
            metrics={
                "baseline_simulated_seconds": report.baseline.makespan,
                "variants": len(report.variants),
                "delta_makespan_seconds": {
                    f"{v.component}={v.label}": v.delta_makespan
                    for v in report.variants
                },
                "reconciled": report.ok,
            },
        )
        print(f"bench json: {args.bench_json}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_tune(args) -> int:
    import json

    from repro.observability.tune import (
        TuneError,
        TuneSpace,
        default_tune_spec,
        load_tune,
        load_tuned_config,
        render_tune,
        run_tune,
        verify_tune,
        write_tune,
    )

    if args.check:
        report_path = os.path.join(args.out_dir, f"{args.basename}.json")
        best_path = os.path.join(args.out_dir, "best-config.json")
        try:
            report = load_tune(report_path)
            best = (
                load_tuned_config(best_path)
                if os.path.exists(best_path)
                else None
            )
        except (OSError, TuneError, ValueError) as exc:
            print(f"cannot load tune report: {exc}", file=sys.stderr)
            return 2
        problems = verify_tune(report, best_config=best)
        if problems:
            for problem in problems:
                print(f"FAIL {problem}")
            return 1
        print(
            f"{report_path}: predictions and validations reconcile exactly "
            f"({len(report['predictions'])} candidates, "
            f"{len(report['validated'])} validated)"
        )
        return 0

    spec = default_tune_spec(n_points=args.points, seed=args.seed)
    journal_dir = args.journal_dir or os.path.join(args.out_dir, "tune")
    try:
        report = run_tune(
            spec,
            TuneSpace(),
            journal_dir=journal_dir,
            top_n=args.top,
            budget=args.budget,
        )
    except TuneError as exc:
        print(f"tune failed: {exc}", file=sys.stderr)
        return 2
    written = write_tune(report, out_dir=args.out_dir, basename=args.basename)
    text = (
        json.dumps(report.as_dict(), indent=2, sort_keys=True)
        if args.json
        else render_tune(report)
    )
    print(text)
    for kind, path in sorted(written.items()):
        print(f"{kind}: {path}", file=sys.stderr)
    if args.bench_json:
        from repro.evaluation.benchjson import merge_bench_json

        merge_bench_json(
            args.bench_json,
            "autotune",
            workload=report.spec.as_dict(),
            metrics={
                "baseline_simulated_seconds": report.baseline_seconds,
                "candidates": len(report.predictions),
                "validated": len(report.validated),
                "winner": report.winner.candidate.describe(),
                "winner_simulated_seconds": report.winner.actual_seconds,
                "winner_rel_error": report.winner.rel_error,
                "improvement_fraction": report.improvement_fraction,
                "error_budget": report.budget,
                "within_budget": report.ok,
            },
        )
        print(f"bench json: {args.bench_json}", file=sys.stderr)
    return 0 if report.ok else 1


def _global_options() -> argparse.ArgumentParser:
    """The run-wide flags, accepted before *or* after the subcommand.

    (``--resume`` without a value must go after the subcommand, or use
    ``--resume=latest`` — a bare ``--resume`` in front would swallow the
    command name.) Defaults are suppressed so a flag given in front of
    the subcommand is not clobbered by the subparser's defaults.
    """
    parent = argparse.ArgumentParser(
        add_help=False, argument_default=argparse.SUPPRESS
    )
    parent.add_argument(
        "--executor",
        choices=EXECUTOR_KINDS,
        help="task-execution backend for every runtime in the run "
        "(default: $REPRO_EXECUTOR or serial); never changes results, "
        "only wall-clock time",
    )
    parent.add_argument(
        "--num-workers",
        type=int,
        metavar="N",
        help="worker count for the threads/processes backends "
        "(default: $REPRO_NUM_WORKERS or one per CPU)",
    )
    parent.add_argument(
        "--data-plane",
        choices=DATA_PLANE_KINDS,
        help="how numpy splits reach tasks: pickled copies or zero-copy "
        "shared-memory segments (default: $REPRO_DATA_PLANE or pickled); "
        "never changes results, only wall-clock time",
    )
    parent.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="DFS directory where G-means drivers checkpoint after every "
        "iteration (default: $REPRO_CHECKPOINT_DIR or off)",
    )
    parent.add_argument(
        "--resume",
        nargs="?",
        const="latest",
        metavar="CHECKPOINT",
        help="resume G-means runs from a checkpoint file, or from the "
        "newest one when no value is given (default: $REPRO_RESUME)",
    )
    parent.add_argument(
        "--max-job-retries",
        type=int,
        metavar="N",
        help="re-submit a permanently failed job up to N times with "
        "exponential backoff (default: $REPRO_MAX_JOB_RETRIES or 0)",
    )
    parent.add_argument(
        "--node-failure-prob",
        type=float,
        metavar="P",
        help="per-job-attempt probability that each serving node dies "
        "(correlated replica loss, heartbeat detection, task "
        "re-scheduling onto survivors; default: $REPRO_NODE_FAILURE_PROB "
        "or off); never changes results, only capacity and time",
    )
    parent.add_argument(
        "--node-recovery-prob",
        type=float,
        metavar="P",
        help="per-job-attempt probability that each dead node rejoins "
        "empty (default: $REPRO_NODE_RECOVERY_PROB or 0)",
    )
    parent.add_argument(
        "--heartbeat-timeout",
        type=float,
        metavar="SECONDS",
        help="simulated seconds before a dead node's tasks are declared "
        "lost and re-scheduled (default: $REPRO_HEARTBEAT_TIMEOUT or 30)",
    )
    parent.add_argument(
        "--journal",
        metavar="PATH",
        help="append a structured JSON-lines run journal to PATH "
        "(spans, per-task timings, fault events; default: $REPRO_JOURNAL "
        "or off); inspect it with 'repro trace PATH'",
    )
    parent.add_argument(
        "--live",
        action="store_true",
        help="render live run progress (iteration/phase bars + rolling "
        "counters) to stderr; degrades to one line per iteration on "
        "non-TTY streams (default: $REPRO_LIVE or off)",
    )
    parent.add_argument(
        "--metrics-port",
        type=int,
        metavar="PORT",
        help="serve live run metrics over HTTP on 127.0.0.1:PORT "
        "(/metrics Prometheus text, /healthz, /state JSON; 0 picks an "
        "ephemeral port; default: $REPRO_METRICS_PORT or off)",
    )
    parent.add_argument(
        "--profile-tasks",
        action="store_true",
        help="measure real CPU time and tracemalloc peak per map/reduce "
        "task and stamp them onto journal task records (see "
        "'repro analyze'; default: $REPRO_PROFILE_TASKS or off)",
    )
    parent.add_argument(
        "--slo",
        metavar="RULES",
        help="comma-separated SLO rules evaluated live, e.g. "
        "'max_k=64,warn:max_wall_seconds=600'; rules: max_wall_seconds, "
        "max_simulated_seconds, max_k, max_heap_fraction, "
        "max_job_retries, on_anomaly=TYPE (breach on the first firing "
        "of that --anomaly detector). Default action aborts cleanly "
        f"after the iteration checkpoint with exit code {EXIT_SLO_BREACH}; "
        "the 'warn:' prefix only warns (default: $REPRO_SLO or none)",
    )
    parent.add_argument(
        "--anomaly",
        nargs="?",
        const="1",
        metavar="SPEC",
        help="arm the in-flight anomaly detectors (straggler_onset, "
        "skew_drift, heap_breach_predicted, cost_model_drift, "
        "fault_storm); bare flag uses default thresholds, or give a "
        "comma-separated knob spec like "
        "'straggler_ratio=2,storm_events=4'. Firings are journalled as "
        "typed 'anomaly' events derived from simulated quantities only "
        "(verify with 'repro anomalies JOURNAL --check'; a bare "
        "--anomaly must go after the subcommand, like --resume; "
        "default: $REPRO_ANOMALY or off)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    options = _global_options()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Determining the k in k-means with MapReduce'"
        " (EDBT 2014): run any table/figure experiment or ablation.",
        parents=[options],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list",
        help="list available experiments and ablations",
        parents=[options],
    )

    p_exp = sub.add_parser(
        "experiment", help="run one paper table/figure", parents=[options]
    )
    p_exp.add_argument("name", choices=sorted(EXPERIMENTS))
    p_exp.add_argument("--out", help="also write the report to this file")

    p_abl = sub.add_parser(
        "ablation", help="run one design-choice ablation", parents=[options]
    )
    p_abl.add_argument("name", choices=sorted(ABLATIONS))
    p_abl.add_argument("--out", help="also write the report to this file")

    p_all = sub.add_parser(
        "all", help="run everything (several minutes)", parents=[options]
    )
    p_all.add_argument("--out-dir", help="directory for per-report files")

    p_report = sub.add_parser(
        "report",
        help="run experiments and write one markdown report, or — given "
        "a directory of journals — render the cross-run registry "
        "dashboard",
        parents=[options],
    )
    p_report.add_argument(
        "rundir",
        nargs="?",
        default=None,
        metavar="RUNDIR",
        help="directory of *.jsonl journals; when given, render the "
        "longitudinal registry dashboard instead of running experiments",
    )
    p_report.add_argument(
        "--out", default="report.md", help="output markdown path"
    )
    p_report.add_argument(
        "--only",
        nargs="*",
        help="restrict to these experiment/ablation names",
    )
    p_report.add_argument(
        "--out-dir",
        default="reports",
        metavar="DIR",
        help="registry mode: directory for the dashboard artifacts "
        "(default: reports)",
    )
    p_report.add_argument(
        "--basename",
        default="dashboard",
        metavar="NAME",
        help="registry mode: artifact basename (default: dashboard)",
    )
    p_report.add_argument(
        "--no-html",
        action="store_true",
        default=False,
        help="registry mode: skip the HTML rendering of the dashboard",
    )

    p_trace = sub.add_parser(
        "trace",
        help="render a recorded run journal (timeline, counters, gantts)",
        parents=[options],
    )
    p_trace.add_argument("journal_path", metavar="JOURNAL")
    p_trace.add_argument(
        "--gantt",
        action="store_true",
        default=False,
        help="also render per-job Gantt charts from the recorded tasks",
    )
    p_trace.add_argument(
        "--metrics",
        action="store_true",
        default=False,
        help="also dump the run totals in Prometheus text format",
    )
    p_trace.add_argument(
        "--width",
        type=int,
        default=64,
        metavar="COLS",
        help="Gantt chart width in characters (default: 64)",
    )
    p_trace.add_argument(
        "--follow",
        action="store_true",
        default=False,
        help="tail a growing journal, re-rendering as records land; "
        "returns when the recorded run completes",
    )
    p_trace.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="poll interval for --follow (default: 1.0)",
    )
    p_trace.add_argument(
        "--format",
        choices=("text", "chrome"),
        default="text",
        help="output format: human-readable text (default) or Chrome "
        "trace-event JSON loadable in Perfetto / about:tracing",
    )
    p_trace.add_argument("--out", help="also write the report to this file")

    p_whatif = sub.add_parser(
        "whatif",
        help="predict a recorded run's makespan under a modified cluster "
        "config by re-scheduling its per-task durations",
        parents=[options],
    )
    p_whatif.add_argument("journal_path", metavar="JOURNAL")
    p_whatif.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="scenario knob, repeatable: nodes, num_workers, map_slots, "
        "reduce_slots, combiner (on/off), split_factor, scheduler "
        "(recorded/lpt) — e.g. --set num_workers=8 --set combiner=off",
    )
    p_whatif.add_argument(
        "--json",
        action="store_true",
        default=False,
        help="emit the machine-readable prediction instead of text",
    )
    p_whatif.add_argument("--out", help="also write the report to this file")

    p_analyze = sub.add_parser(
        "analyze",
        help="profile a recorded journal: task skew/stragglers, "
        "heap-model audit, cost-model residuals",
        parents=[options],
    )
    p_analyze.add_argument("journal_path", metavar="JOURNAL")
    p_analyze.add_argument(
        "--json",
        action="store_true",
        default=False,
        help="emit the machine-readable report instead of text",
    )
    p_analyze.add_argument("--out", help="also write the report to this file")

    p_anomalies = sub.add_parser(
        "anomalies",
        help="re-run the anomaly detectors over a recorded journal; "
        "--check demands the live-emitted events re-derive exactly "
        "(exit 1 on any mismatch)",
        parents=[options],
    )
    p_anomalies.add_argument("journal_path", metavar="JOURNAL")
    p_anomalies.add_argument(
        "--check",
        action="store_true",
        default=False,
        help="reconcile against the journal's own anomaly events: every "
        "recorded firing must re-derive with identical sequence, parent "
        "and attributes (exit 1 on mismatch or when detectors were off)",
    )
    p_anomalies.add_argument(
        "--json",
        action="store_true",
        default=False,
        help="emit the machine-readable report instead of text",
    )
    p_anomalies.add_argument("--out", help="also write the report to this file")

    p_diff = sub.add_parser(
        "diff",
        help="compare two journals and fail on perf/result regressions "
        "(exit 1 when thresholds are exceeded)",
        parents=[options],
    )
    p_diff.add_argument("baseline", metavar="BASELINE")
    p_diff.add_argument("candidate", metavar="CANDIDATE")
    p_diff.add_argument(
        "--max-time-regression",
        type=float,
        default=0.10,
        metavar="FRAC",
        help="allowed fractional growth of simulated time (default: 0.10)",
    )
    p_diff.add_argument(
        "--max-counter-regression",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="allowed fractional growth of watched counters (default: 0.25)",
    )
    p_diff.add_argument(
        "--allow-k-drift",
        action="store_true",
        default=False,
        help="do not treat a diverging k-trajectory as a regression",
    )
    p_diff.add_argument(
        "--json",
        action="store_true",
        default=False,
        help="emit the machine-readable diff instead of text",
    )
    p_diff.add_argument("--out", help="also write the report to this file")

    p_ablate = sub.add_parser(
        "ablate",
        help="run every single-flip component variant through the "
        "deterministic harness and score per-component importance "
        "from the journals",
        parents=[options],
    )
    p_ablate.add_argument(
        "--points",
        type=int,
        default=3000,
        help="workload size in points (default: 3000)",
    )
    p_ablate.add_argument(
        "--seed", type=int, default=11, help="workload seed (default: 11)"
    )
    p_ablate.add_argument(
        "--components",
        action="append",
        metavar="NAME",
        help="ablate only this engine component, repeatable "
        "(default: all; see --list-components)",
    )
    p_ablate.add_argument(
        "--out-dir",
        default="reports",
        help="where the importance report lands (default: reports)",
    )
    p_ablate.add_argument(
        "--basename",
        default="ablation",
        help="report file stem (default: ablation)",
    )
    p_ablate.add_argument(
        "--journal-dir",
        help="where per-run journals land (default: <out-dir>/ablate)",
    )
    p_ablate.add_argument(
        "--check",
        action="store_true",
        default=False,
        help="verify the committed report reconciles exactly with its "
        "journals instead of re-running the grid (exit 1 on drift)",
    )
    p_ablate.add_argument(
        "--list-components",
        action="store_true",
        default=False,
        help="print the declarative component manifest and exit",
    )
    p_ablate.add_argument(
        "--json",
        action="store_true",
        default=False,
        help="emit the machine-readable report instead of markdown",
    )
    p_ablate.add_argument(
        "--bench-json",
        metavar="PATH",
        help="merge the importance summary into this BENCH_*.json",
    )

    p_tune = sub.add_parser(
        "tune",
        help="search the joint config space by what-if prediction from "
        "one baseline journal, validate the top-N for real, and emit "
        "the winning config",
        parents=[options],
    )
    p_tune.add_argument(
        "--points",
        type=int,
        default=6000,
        help="workload size in points (default: 6000)",
    )
    p_tune.add_argument(
        "--seed", type=int, default=11, help="workload seed (default: 11)"
    )
    p_tune.add_argument(
        "--top",
        type=int,
        default=3,
        help="how many predicted winners to validate by real re-runs "
        "(default: 3)",
    )
    p_tune.add_argument(
        "--budget",
        type=float,
        default=0.02,
        metavar="FRAC",
        help="predicted-vs-actual relative makespan error budget for the "
        "winner (default: 0.02, the bench_whatif_accuracy bound)",
    )
    p_tune.add_argument(
        "--out-dir",
        default="reports",
        help="where tune.{md,json} and best-config.json land "
        "(default: reports)",
    )
    p_tune.add_argument(
        "--basename",
        default="tune",
        help="report file stem (default: tune)",
    )
    p_tune.add_argument(
        "--journal-dir",
        help="where baseline/validation/decision journals land "
        "(default: <out-dir>/tune)",
    )
    p_tune.add_argument(
        "--check",
        action="store_true",
        default=False,
        help="verify the committed tune report reconciles exactly with "
        "its journals instead of re-tuning (exit 1 on drift)",
    )
    p_tune.add_argument(
        "--json",
        action="store_true",
        default=False,
        help="emit the machine-readable report instead of markdown",
    )
    p_tune.add_argument(
        "--bench-json",
        metavar="PATH",
        help="merge the tune outcome into this BENCH_*.json",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    # Experiments build their runtimes deep inside registry functions;
    # the env vars are how these run-wide choices reach all of them.
    # (Suppressed defaults: a flag is absent unless given somewhere.)
    env_bindings = (
        ("executor", EXECUTOR_ENV),
        ("num_workers", NUM_WORKERS_ENV),
        ("data_plane", DATA_PLANE_ENV),
        ("checkpoint_dir", CHECKPOINT_DIR_ENV),
        ("resume", RESUME_ENV),
        ("max_job_retries", MAX_JOB_RETRIES_ENV),
        ("node_failure_prob", NODE_FAILURE_PROB_ENV),
        ("node_recovery_prob", NODE_RECOVERY_PROB_ENV),
        ("heartbeat_timeout", HEARTBEAT_TIMEOUT_ENV),
        ("journal", JOURNAL_ENV),
        ("live", LIVE_ENV),
        ("metrics_port", METRICS_PORT_ENV),
        ("profile_tasks", PROFILE_TASKS_ENV),
        ("slo", SLO_ENV),
        ("anomaly", ANOMALY_ENV),
    )
    for attr, env_name in env_bindings:
        value = getattr(args, attr, None)
        if value is not None and value is not False:
            os.environ[env_name] = str(value)
    handlers = {
        "list": _cmd_list,
        "experiment": _cmd_experiment,
        "ablation": _cmd_ablation,
        "all": _cmd_all,
        "report": _cmd_report,
        "trace": _cmd_trace,
        "whatif": _cmd_whatif,
        "analyze": _cmd_analyze,
        "anomalies": _cmd_anomalies,
        "diff": _cmd_diff,
        "ablate": _cmd_ablate,
        "tune": _cmd_tune,
    }
    from repro.common.errors import SLOViolationError

    try:
        return handlers[args.command](args)
    except SLOViolationError as exc:
        print(f"[repro] {exc}", file=sys.stderr)
        return EXIT_SLO_BREACH


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
