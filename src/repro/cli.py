"""Command-line interface: run any paper experiment or ablation.

::

    python -m repro list
    python -m repro experiment table1
    python -m repro experiment fig3 --out fig3.txt
    python -m repro ablation kmeans_iterations
    python -m repro all --out-dir reports/

Every run is deterministic (the experiments carry their own seeds);
the printed report is the same paper-vs-measured text the benchmark
suite archives.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys


from repro.evaluation.registry import ABLATIONS, DESCRIPTIONS, EXPERIMENTS
from repro.mapreduce.executors import (
    EXECUTOR_ENV,
    EXECUTOR_KINDS,
    NUM_WORKERS_ENV,
)


def _emit(result, out: "str | None") -> None:
    print(result.text)
    if out:
        path = pathlib.Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(result.text + "\n")
        print(f"\n[written to {path}]", file=sys.stderr)


def _cmd_list(_args) -> int:
    print("experiments (python -m repro experiment <name>):")
    for name in EXPERIMENTS:
        print(f"  {name:<24}{DESCRIPTIONS[name]}")
    print()
    print("ablations (python -m repro ablation <name>):")
    for name in ABLATIONS:
        print(f"  {name:<24}{DESCRIPTIONS[name]}")
    return 0


def _cmd_experiment(args) -> int:
    result = EXPERIMENTS[args.name]()
    _emit(result, args.out)
    return 0


def _cmd_ablation(args) -> int:
    result = ABLATIONS[args.name]()
    _emit(result, args.out)
    return 0


def _cmd_all(args) -> int:
    out_dir = pathlib.Path(args.out_dir) if args.out_dir else None
    for name, fn in {**EXPERIMENTS, **ABLATIONS}.items():
        print(f"=== {name} " + "=" * max(0, 60 - len(name)))
        result = fn()
        print(result.text)
        print()
        if out_dir:
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{name}.txt").write_text(result.text + "\n")
    return 0


def _cmd_report(args) -> int:
    from repro.evaluation.report import write_report

    path = write_report(
        args.out,
        names=args.only or None,
        progress=lambda name: print(f"running {name} ...", file=sys.stderr),
    )
    print(f"report written to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Determining the k in k-means with MapReduce'"
        " (EDBT 2014): run any table/figure experiment or ablation.",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_KINDS,
        help="task-execution backend for every runtime in the run "
        "(default: $REPRO_EXECUTOR or serial); never changes results, "
        "only wall-clock time",
    )
    parser.add_argument(
        "--num-workers",
        type=int,
        metavar="N",
        help="worker count for the threads/processes backends "
        "(default: $REPRO_NUM_WORKERS or one per CPU)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments and ablations")

    p_exp = sub.add_parser("experiment", help="run one paper table/figure")
    p_exp.add_argument("name", choices=sorted(EXPERIMENTS))
    p_exp.add_argument("--out", help="also write the report to this file")

    p_abl = sub.add_parser("ablation", help="run one design-choice ablation")
    p_abl.add_argument("name", choices=sorted(ABLATIONS))
    p_abl.add_argument("--out", help="also write the report to this file")

    p_all = sub.add_parser("all", help="run everything (several minutes)")
    p_all.add_argument("--out-dir", help="directory for per-report files")

    p_report = sub.add_parser(
        "report", help="run experiments and write one markdown report"
    )
    p_report.add_argument(
        "--out", default="report.md", help="output markdown path"
    )
    p_report.add_argument(
        "--only",
        nargs="*",
        help="restrict to these experiment/ablation names",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    # Experiments build their runtimes deep inside registry functions;
    # the env vars are how the backend choice reaches all of them.
    if args.executor:
        os.environ[EXECUTOR_ENV] = args.executor
    if args.num_workers is not None:
        os.environ[NUM_WORKERS_ENV] = str(args.num_workers)
    handlers = {
        "list": _cmd_list,
        "experiment": _cmd_experiment,
        "ablation": _cmd_ablation,
        "all": _cmd_all,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
