"""Partitioning strategies beyond the default hash partitioner.

The paper closes Section 4 with: "there is a risk that because of
skewed data, some reducers will have a higher workload, thus reducing
the global efficiency of the algorithm. Handling skewed data in
MapReduce is a whole subject by itself and is left as future work."

This module implements that future work for the case that actually
arises in G-means: reducer load is driven by the *value volume per
key* (points per cluster), and the driver knows each cluster's size
from the previous k-means pass. A weight-balanced partitioner assigns
keys to reduce tasks with the LPT rule over those known weights, so
one huge cluster no longer serialises the whole reduce phase behind a
single task.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ConfigurationError
from repro.mapreduce.runtime import JobResult
from repro.mapreduce.types import stable_hash


def make_weight_balanced_partitioner(
    weights: dict, num_reducers: int
) -> Callable[[object, int], int]:
    """Build a partitioner that balances known per-key loads.

    Keys listed in ``weights`` are assigned to reduce tasks with the
    LPT greedy rule (heaviest first onto the least-loaded task); keys
    not listed fall back to hash partitioning. The returned callable
    has the standard ``(key, num_reducers) -> index`` signature but is
    pinned to the ``num_reducers`` it was built for.
    """
    if num_reducers < 1:
        raise ConfigurationError(f"num_reducers must be >= 1, got {num_reducers}")
    loads = [0.0] * num_reducers
    assignment: dict = {}
    for key in sorted(weights, key=lambda k: (-weights[k], stable_hash(k))):
        target = min(range(num_reducers), key=loads.__getitem__)
        assignment[key] = target
        loads[target] += float(weights[key])

    def partitioner(key: object, n: int) -> int:
        if n != num_reducers:
            raise ConfigurationError(
                f"balanced partitioner built for {num_reducers} reducers, "
                f"job configured {n}"
            )
        if key in assignment:
            return assignment[key]
        return stable_hash(key) % n

    return partitioner


def reduce_load_imbalance(result: JobResult) -> float:
    """Max/mean ratio of reduce-task durations for a finished job.

    1.0 is perfect balance; a job whose slowest reducer did all the
    work on an R-task job approaches R. Tasks that only paid startup
    still count — idle reducers are how skew shows up.
    """
    times = result.reduce_task_seconds
    if not times:
        return 1.0
    mean = sum(times) / len(times)
    if mean == 0:
        return 1.0
    return max(times) / mean
