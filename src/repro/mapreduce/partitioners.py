"""Partitioning strategies beyond the default hash partitioner.

The paper closes Section 4 with: "there is a risk that because of
skewed data, some reducers will have a higher workload, thus reducing
the global efficiency of the algorithm. Handling skewed data in
MapReduce is a whole subject by itself and is left as future work."

This module implements that future work for the case that actually
arises in G-means: reducer load is driven by the *value volume per
key* (points per cluster), and the driver knows each cluster's size
from the previous k-means pass. A weight-balanced partitioner assigns
keys to reduce tasks with the LPT rule over those known weights, so
one huge cluster no longer serialises the whole reduce phase behind a
single task.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ConfigurationError
from repro.mapreduce.runtime import JobResult
from repro.mapreduce.types import stable_hash


class WeightBalancedPartitioner:
    """A partitioner that balances known per-key loads.

    Keys listed in ``weights`` are assigned to reduce tasks with the
    LPT greedy rule (heaviest first onto the least-loaded task); keys
    not listed fall back to hash partitioning. Instances have the
    standard ``(key, num_reducers) -> index`` call signature but are
    pinned to the ``num_reducers`` they were built for. A class rather
    than a closure so jobs carrying one stay picklable for the
    process-pool executor backend.
    """

    __slots__ = ("num_reducers", "assignment")

    def __init__(self, weights: dict, num_reducers: int):
        if num_reducers < 1:
            raise ConfigurationError(
                f"num_reducers must be >= 1, got {num_reducers}"
            )
        self.num_reducers = int(num_reducers)
        loads = [0.0] * self.num_reducers
        self.assignment: dict = {}
        for key in sorted(weights, key=lambda k: (-weights[k], stable_hash(k))):
            target = min(range(self.num_reducers), key=loads.__getitem__)
            self.assignment[key] = target
            loads[target] += float(weights[key])

    def __call__(self, key: object, n: int) -> int:
        if n != self.num_reducers:
            raise ConfigurationError(
                f"balanced partitioner built for {self.num_reducers} reducers, "
                f"job configured {n}"
            )
        if key in self.assignment:
            return self.assignment[key]
        return stable_hash(key) % n

    def __reduce__(self):
        return (_rebuild_partitioner, (self.num_reducers, self.assignment))


def _rebuild_partitioner(num_reducers: int, assignment: dict) -> "WeightBalancedPartitioner":
    """Pickle helper: restore a partitioner from its computed assignment."""
    partitioner = WeightBalancedPartitioner({}, num_reducers)
    partitioner.assignment = dict(assignment)
    return partitioner


def make_weight_balanced_partitioner(
    weights: dict, num_reducers: int
) -> Callable[[object, int], int]:
    """Build a :class:`WeightBalancedPartitioner` (compatibility factory)."""
    return WeightBalancedPartitioner(weights, num_reducers)


def reduce_load_imbalance(result: JobResult) -> float:
    """Max/mean ratio of reduce-task durations for a finished job.

    1.0 is perfect balance; a job whose slowest reducer did all the
    work on an R-task job approaches R. Tasks that only paid startup
    still count — idle reducers are how skew shows up.
    """
    times = result.reduce_task_seconds
    if not times:
        return 1.0
    mean = sum(times) / len(times)
    if mean == 0:
        return 1.0
    return max(times) / mean
