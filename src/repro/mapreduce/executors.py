"""Pluggable task-execution backends for the MapReduce runtime.

The simulated Hadoop runtime used to run every map and reduce task
serially in one Python process. The paper's iterations are
embarrassingly parallel across splits and clusters, so the runtime now
delegates task execution to a :class:`TaskExecutor` backend:

* ``serial`` — the original in-process loop (default);
* ``threads`` — a shared :class:`concurrent.futures.ThreadPoolExecutor`
  (wins when mappers spend their time in GIL-releasing numpy kernels);
* ``processes`` — a shared
  :class:`concurrent.futures.ProcessPoolExecutor` (true CPU
  parallelism; jobs, contexts and task results must be picklable).

Determinism contract
--------------------

Results are **byte-identical across all backends**, because nothing a
task computes depends on scheduling:

* per-task RNG seeds are spawned from the runtime RNG *by task index*
  before anything is submitted (see
  :func:`repro.common.rng.spawn_seeds`);
* task outputs and counters are merged in task-index order, never in
  completion order;
* task failures are re-raised for the lowest-index failing task, which
  is exactly the task that would have raised first under ``serial``;
* fault injection and cost-model timing run in the submitting process,
  in task-index order, over the same sequential fault-RNG stream the
  serial backend consumes.

The worker functions :func:`execute_map_task` /
:func:`execute_reduce_task` are module-level so the process backend can
pickle them by qualified name.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Callable, Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.common.errors import ConfigurationError
from repro.mapreduce.counters import Counters, MRCounter, framework
from repro.mapreduce.dataplane import (
    DATA_PLANE_ENV,
    DATA_PLANE_KINDS,
    resolve_data_plane,
)
from repro.mapreduce.hdfs import Split
from repro.mapreduce.job import MapContext, Mapper, ReduceContext, Reducer
from repro.mapreduce.shuffle import group_by_key, run_combiner, sorted_keys
from repro.observability.profiling import task_profiler

#: Recognised backend names, in documentation order.
EXECUTOR_KINDS = ("serial", "threads", "processes")

#: Recognised dispatch strategies for the pool backends: ``wave``
#: stripes a phase's tasks into one batch submission per worker (one
#: pickle round-trip per worker per phase); ``task`` is the historical
#: one-submission-per-task sliding window.
DISPATCH_KINDS = ("wave", "task")

#: Environment variables consulted by :meth:`RuntimeConfig.from_env`
#: (and therefore by every runtime constructed without an explicit
#: config — this is how CI runs the whole suite over a second backend).
EXECUTOR_ENV = "REPRO_EXECUTOR"
NUM_WORKERS_ENV = "REPRO_NUM_WORKERS"
MAX_JOB_RETRIES_ENV = "REPRO_MAX_JOB_RETRIES"
RETRY_BACKOFF_ENV = "REPRO_RETRY_BACKOFF"
DISPATCH_ENV = "REPRO_DISPATCH"


def default_num_workers() -> int:
    """Worker count used when the config leaves ``num_workers`` unset."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution-backend selection for :class:`MapReduceRuntime`.

    ``executor`` picks the backend (``serial``/``threads``/
    ``processes``); ``num_workers`` bounds backend concurrency (``None``
    means one worker per CPU). Worker counts never affect results —
    only wall-clock time.

    ``max_job_retries`` re-executes a whole job that failed permanently
    (a task out of attempts, an unavailable split) up to that many extra
    times, with exponential backoff (``retry_backoff_seconds`` doubled
    per retry via ``retry_backoff_factor``, plus deterministic jitter of
    up to ``retry_jitter`` of the delay) charged to simulated time.
    Re-executions re-use the failed attempt's task seeds, so retries —
    like every other fault feature — perturb time, never results.

    ``data_plane`` selects how record blocks reach workers: ``pickled``
    ships them by value, ``shared`` maps them from shared-memory
    segments (see :mod:`repro.mapreduce.dataplane`); ``None`` defers to
    ``$REPRO_DATA_PLANE``. ``dispatch`` selects pool submission
    granularity: ``wave`` (default) stripes a phase into one batch per
    worker, ``task`` submits every task individually. Both knobs trade
    communication cost only — results are byte-identical either way.
    """

    executor: str = "serial"
    num_workers: int | None = None
    max_job_retries: int = 0
    retry_backoff_seconds: float = 30.0
    retry_backoff_factor: float = 2.0
    retry_jitter: float = 0.1
    data_plane: "str | None" = None
    dispatch: str = "wave"

    def __post_init__(self) -> None:
        if self.executor not in EXECUTOR_KINDS:
            raise ConfigurationError(
                f"executor must be one of {EXECUTOR_KINDS}, got {self.executor!r}"
            )
        if self.data_plane is not None and self.data_plane not in DATA_PLANE_KINDS:
            raise ConfigurationError(
                f"data_plane must be one of {DATA_PLANE_KINDS}, "
                f"got {self.data_plane!r}"
            )
        if self.dispatch not in DISPATCH_KINDS:
            raise ConfigurationError(
                f"dispatch must be one of {DISPATCH_KINDS}, got {self.dispatch!r}"
            )
        if self.num_workers is not None and self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.max_job_retries < 0:
            raise ConfigurationError(
                f"max_job_retries must be >= 0, got {self.max_job_retries}"
            )
        if self.retry_backoff_seconds < 0:
            raise ConfigurationError(
                f"retry_backoff_seconds must be >= 0, got {self.retry_backoff_seconds}"
            )
        if self.retry_backoff_factor < 1.0:
            raise ConfigurationError(
                f"retry_backoff_factor must be >= 1, got {self.retry_backoff_factor}"
            )
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ConfigurationError(
                f"retry_jitter must be in [0, 1], got {self.retry_jitter}"
            )

    @property
    def effective_data_plane(self) -> str:
        """The plane actually in force: explicit, else env, else pickled
        — with the shared→pickled platform fallback applied."""
        return resolve_data_plane(self.data_plane)

    @classmethod
    def from_env(cls, environ: "Mapping[str, str] | None" = None) -> "RuntimeConfig":
        """Build a config from ``REPRO_EXECUTOR`` / ``REPRO_NUM_WORKERS``
        / ``REPRO_MAX_JOB_RETRIES`` / ``REPRO_RETRY_BACKOFF``.

        Unset or empty variables fall back to the defaults, so code that
        constructs a runtime without an explicit config keeps its
        historical serial, no-retry behaviour.
        """
        env = os.environ if environ is None else environ
        kind = (env.get(EXECUTOR_ENV) or "serial").strip() or "serial"

        def _int(name: str, fallback: int) -> int:
            raw = (env.get(name) or "").strip()
            if not raw:
                return fallback
            try:
                return int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"{name} must be an integer, got {raw!r}"
                ) from None

        raw_workers = (env.get(NUM_WORKERS_ENV) or "").strip()
        try:
            workers = int(raw_workers) if raw_workers else None
        except ValueError:
            raise ConfigurationError(
                f"{NUM_WORKERS_ENV} must be an integer, got {raw_workers!r}"
            ) from None
        raw_backoff = (env.get(RETRY_BACKOFF_ENV) or "").strip()
        try:
            backoff = float(raw_backoff) if raw_backoff else 30.0
        except ValueError:
            raise ConfigurationError(
                f"{RETRY_BACKOFF_ENV} must be a float, got {raw_backoff!r}"
            ) from None
        return cls(
            executor=kind,
            num_workers=workers,
            max_job_retries=_int(MAX_JOB_RETRIES_ENV, 0),
            retry_backoff_seconds=backoff,
            data_plane=(env.get(DATA_PLANE_ENV) or "").strip() or None,
            dispatch=(env.get(DISPATCH_ENV) or "wave").strip() or "wave",
        )


# -- task specifications and results ------------------------------------


@dataclass(frozen=True)
class MapTaskSpec:
    """Everything one map task needs, picklable for the process backend.

    ``profile`` opts the task body into real resource measurement
    (CPU seconds; see :mod:`repro.observability.profiling`);
    ``profile_memory`` additionally arms the expensive tracemalloc peak
    trace — the runtime samples it onto the first task of each phase of
    geometrically sampled jobs (the 1st, 2nd, 4th, 8th, ... job).
    """

    task_id: str
    mapper: Callable[[], Mapper]
    combiner: "Callable[[], Reducer] | None"
    config: dict
    split: Split
    seed: int
    heap_bytes: int
    profile: bool = False
    profile_memory: bool = False


@dataclass(frozen=True)
class ReduceTaskSpec:
    """Everything one reduce task needs, picklable for the process backend."""

    task_id: str
    reducer: Callable[[], Reducer]
    config: dict
    bucket: list
    seed: int
    heap_bytes: int
    heap_bytes_per_value: "Callable[[object], int] | None"
    profile: bool = False
    profile_memory: bool = False


@dataclass
class TaskResult:
    """What a task sends back to the runtime for index-ordered merging.

    ``wall_seconds`` is the real time the task body took *wherever it
    ran* (inline, worker thread or worker process) — the run journal's
    per-task wall timing. ``cpu_seconds`` is populated only when the
    spec asked for profiling, ``peak_memory_bytes`` only when the spec
    was additionally memory-sampled (``None`` otherwise). All three are
    measurement, never input: nothing downstream computes with them,
    which is what keeps results identical across backends.
    """

    pairs: list
    counters: Counters
    heap_high_water: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    peak_memory_bytes: "int | None" = None


@dataclass(frozen=True)
class TaskFailure:
    """A captured task exception, re-raised by the runtime in index order."""

    error: Exception


def execute_map_task(spec: MapTaskSpec) -> TaskResult:
    """Run one map task (mapper lifecycle + per-task combiner)."""
    started = time.perf_counter()
    task_counters = Counters()
    framework(task_counters, MRCounter.MAP_TASKS)
    framework(task_counters, MRCounter.MAP_INPUT_RECORDS, spec.split.num_records)
    rng = np.random.default_rng(spec.seed)
    ctx = MapContext(spec.config, task_counters, rng, spec.heap_bytes, spec.task_id)
    with task_profiler(spec.profile, memory=spec.profile_memory) as profile:
        mapper = spec.mapper()
        mapper.setup(ctx)
        mapper.map_split(spec.split, ctx)
        mapper.close(ctx)
        pairs = ctx.emitted
        if spec.combiner is not None:
            pairs = run_combiner(
                spec.combiner,
                pairs,
                spec.config,
                task_counters,
                rng,
                spec.heap_bytes,
                spec.task_id,
            )
    return TaskResult(
        pairs=pairs,
        counters=task_counters,
        heap_high_water=ctx.heap_high_water,
        wall_seconds=time.perf_counter() - started,
        cpu_seconds=profile.cpu_seconds,
        peak_memory_bytes=profile.peak_memory_bytes,
    )


def execute_reduce_task(spec: ReduceTaskSpec) -> TaskResult:
    """Run one reduce task (sort-merge grouping + reducer lifecycle)."""
    started = time.perf_counter()
    task_counters = Counters()
    framework(task_counters, MRCounter.REDUCE_TASKS)
    rng = np.random.default_rng(spec.seed)
    ctx = ReduceContext(spec.config, task_counters, rng, spec.heap_bytes, spec.task_id)
    with task_profiler(spec.profile, memory=spec.profile_memory) as profile:
        reducer = spec.reducer()
        reducer.setup(ctx)
        groups = group_by_key(spec.bucket)
        framework(task_counters, MRCounter.REDUCE_INPUT_GROUPS, len(groups))
        framework(task_counters, MRCounter.REDUCE_INPUT_RECORDS, len(spec.bucket))
        for key in sorted_keys(groups):
            values = groups[key]
            if spec.heap_bytes_per_value is not None:
                group_bytes = sum(spec.heap_bytes_per_value(v) for v in values)
                ctx.allocate(group_bytes)
                reducer.reduce(key, values, ctx)
                ctx.free(group_bytes)
            else:
                reducer.reduce(key, values, ctx)
        reducer.close(ctx)
    return TaskResult(
        pairs=ctx.emitted,
        counters=task_counters,
        heap_high_water=ctx.heap_high_water,
        wall_seconds=time.perf_counter() - started,
        cpu_seconds=profile.cpu_seconds,
        peak_memory_bytes=profile.peak_memory_bytes,
    )


def _guarded(fn: Callable, spec) -> "TaskResult | TaskFailure":
    """Run ``fn(spec)``, converting the exception into a value.

    Capturing (instead of failing fast) lets the runtime raise the
    *lowest-index* failure, which is the one the serial backend would
    have hit first — completion order must never leak into behaviour.
    """
    try:
        return fn(spec)
    except Exception as err:  # noqa: BLE001 - re-raised by the caller
        return TaskFailure(err)


def unwrap(outcome: "TaskResult | TaskFailure") -> TaskResult:
    """Return the task result, re-raising a captured task failure."""
    if isinstance(outcome, TaskFailure):
        raise outcome.error
    return outcome


def _run_spec_batch(fn: Callable, specs: Sequence) -> list:
    """Run a whole stripe of specs in one worker, outcomes in order.

    The unit of wave dispatch: the process backend pays one submission
    (one spec-batch pickle out, one result-batch pickle back) per
    *worker* per phase instead of per task. Failures are captured per
    spec, exactly as in per-task dispatch, so index-ordered unwrapping
    behaves identically.
    """
    return [_guarded(fn, spec) for spec in specs]


# -- executors ----------------------------------------------------------


@runtime_checkable
class TaskExecutor(Protocol):
    """Strategy interface: run independent tasks, results in index order."""

    name: str

    def run_tasks(
        self,
        fn: Callable,
        specs: Sequence,
        max_concurrency: "int | None" = None,
        on_result: "Callable[[int], None] | None" = None,
    ) -> list:
        """Run ``fn`` over ``specs``; outcome ``i`` belongs to spec ``i``.

        Each outcome is a :class:`TaskResult` or a :class:`TaskFailure`
        (never an in-flight exception): callers unwrap in index order.
        ``max_concurrency`` caps in-flight tasks — the runtime passes
        the cluster's slot count so the simulated topology also bounds
        real parallelism. ``on_result``, when given, is called in the
        submitting thread with the running count of completed tasks —
        live progress only, and deliberately *not* passed the outcomes:
        completion order must never leak into behaviour.
        """
        ...

    def close(self) -> None:
        """Release backend resources (shared pools survive, see below)."""
        ...


class SerialExecutor:
    """The original behaviour: every task runs inline, in index order."""

    name = "serial"

    def run_tasks(
        self,
        fn: Callable,
        specs: Sequence,
        max_concurrency: "int | None" = None,
        on_result: "Callable[[int], None] | None" = None,
    ) -> list:
        outcomes = []
        for spec in specs:
            outcomes.append(_guarded(fn, spec))
            if on_result is not None:
                on_result(len(outcomes))
        return outcomes

    def close(self) -> None:
        pass


class _PoolBackedExecutor:
    """Shared machinery of the thread and process backends.

    Pools are shared per ``(kind, num_workers)`` across runtimes (see
    :func:`_shared_pool`): tests and chained drivers construct many
    runtimes, and paying pool start-up per runtime would drown the
    speedup the pool exists to provide.
    """

    name = "pool"

    def __init__(self, num_workers: "int | None" = None, dispatch: str = "wave"):
        if num_workers is not None and num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {num_workers}"
            )
        if dispatch not in DISPATCH_KINDS:
            raise ConfigurationError(
                f"dispatch must be one of {DISPATCH_KINDS}, got {dispatch!r}"
            )
        self.num_workers = num_workers or default_num_workers()
        self.dispatch = dispatch

    def _pool(self) -> Executor:
        return _shared_pool(self.name, self.num_workers)

    def run_tasks(
        self,
        fn: Callable,
        specs: Sequence,
        max_concurrency: "int | None" = None,
        on_result: "Callable[[int], None] | None" = None,
    ) -> list:
        specs = list(specs)
        if not specs:
            return []
        limit = self.num_workers
        if max_concurrency is not None:
            limit = max(1, min(limit, max_concurrency))
        if limit == 1:
            # One slot is serial execution; skip the pool round-trips.
            outcomes = []
            for spec in specs:
                outcomes.append(_guarded(fn, spec))
                if on_result is not None:
                    on_result(len(outcomes))
            return outcomes
        run = self._run_waves if self.dispatch == "wave" else self._run_on_pool
        try:
            return run(self._pool(), fn, specs, limit, on_result)
        except BrokenExecutor:
            # A dead worker (OOM-killed, crashed interpreter) poisons a
            # pool permanently. Tasks are pure functions of their spec,
            # so rebuilding the pool and rerunning the batch is safe —
            # and deterministic, because results merge by index.
            _discard_shared_pool(self.name, self.num_workers)
            return run(self._pool(), fn, specs, limit, on_result)

    @staticmethod
    def _run_waves(
        pool: Executor,
        fn: Callable,
        specs: list,
        limit: int,
        on_result: "Callable[[int], None] | None" = None,
    ) -> list:
        """Wave dispatch: one striped batch submission per worker.

        Stripe ``w`` holds specs ``w, w+limit, w+2*limit, ...`` — the
        same specs worker ``w`` would own under round-robin per-task
        dispatch — so each worker's load profile is unchanged while the
        submission count drops from ``len(specs)`` to ``limit``.
        Outcomes land back at their spec's index; progress ticks fire
        once per completed stripe with the cumulative task count.
        """
        stripes = min(limit, len(specs))
        futures = {
            pool.submit(_run_spec_batch, fn, specs[w::stripes]): w
            for w in range(stripes)
        }
        results: list = [None] * len(specs)
        completed = 0
        pending = dict(futures)
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                w = pending.pop(future)
                batch = future.result()
                results[w::stripes] = batch
                completed += len(batch)
                if on_result is not None:
                    on_result(completed)
        return results

    @staticmethod
    def _run_on_pool(
        pool: Executor,
        fn: Callable,
        specs: list,
        limit: int,
        on_result: "Callable[[int], None] | None" = None,
    ) -> list:
        results: list = [None] * len(specs)
        pending: dict = {}
        next_index = 0
        completed = 0
        # Sliding window: at most `limit` tasks in flight, yet results
        # land at their spec's index, so merge order is deterministic.
        while next_index < len(specs) or pending:
            while next_index < len(specs) and len(pending) < limit:
                future = pool.submit(_guarded, fn, specs[next_index])
                pending[future] = next_index
                next_index += 1
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                results[pending.pop(future)] = future.result()
                completed += 1
                if on_result is not None:
                    # Progress ticks fire from the submitting thread, in
                    # completion order — they carry only a count, never
                    # a result, so determinism is untouched.
                    on_result(completed)
        return results

    def close(self) -> None:
        """Backends share pools; nothing per-instance to release."""


class ThreadPoolTaskExecutor(_PoolBackedExecutor):
    """Tasks run on a shared thread pool.

    Task state is per-task (own context, counters, RNG), so the only
    shared object a task touches is the read-only job config.
    """

    name = "threads"


class ProcessPoolTaskExecutor(_PoolBackedExecutor):
    """Tasks run on a shared process pool (true CPU parallelism).

    Specs, task functions and results cross process boundaries, so jobs
    must be built from module-level callables (no lambdas or closures —
    see the picklable ``ProjectionHeapCost`` and
    ``WeightBalancedPartitioner`` helpers).
    """

    name = "processes"


def create_executor(config: RuntimeConfig) -> TaskExecutor:
    """Instantiate the backend selected by ``config``."""
    if config.executor == "serial":
        return SerialExecutor()
    if config.executor == "threads":
        return ThreadPoolTaskExecutor(config.num_workers, config.dispatch)
    return ProcessPoolTaskExecutor(config.num_workers, config.dispatch)


# -- shared pools -------------------------------------------------------

_POOLS: "dict[tuple[str, int], Executor]" = {}
_POOLS_LOCK = threading.Lock()


def _make_pool(kind: str, num_workers: int) -> Executor:
    if kind == "threads":
        return ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="repro-task"
        )
    import multiprocessing

    # Prefer fork where the platform offers it: workers inherit loaded
    # modules, which keeps per-pool start-up far below a simulated job.
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    return ProcessPoolExecutor(max_workers=num_workers, mp_context=context)


def _shared_pool(kind: str, num_workers: int) -> Executor:
    """Get-or-create the process-wide pool for ``(kind, num_workers)``."""
    key = (kind, int(num_workers))
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            pool = _make_pool(kind, int(num_workers))
            _POOLS[key] = pool
        return pool


def _discard_shared_pool(kind: str, num_workers: int) -> None:
    """Drop a (broken) shared pool so the next use builds a fresh one."""
    with _POOLS_LOCK:
        pool = _POOLS.pop((kind, int(num_workers)), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_shared_pools() -> None:
    """Shut down every shared worker pool (also registered atexit)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_shared_pools)
