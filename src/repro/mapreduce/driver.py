"""Chained-job drivers with aggregate accounting and checkpointing.

Iterative algorithms such as G-means chain many MapReduce jobs over the
same input dataset; the paper's cost model counts the resulting dataset
reads explicitly (``O(4 log2 k)`` of them). The driver accumulates
counters and simulated time across the chain and implements the
Spark-style ``cache_input`` optimisation from the paper's future-work
section: after the first read, subsequent jobs over the same file are
served from (simulated) memory.

:class:`CheckpointingJobChainDriver` adds driver-side fault tolerance:
Hadoop re-executes dead tasks and HDFS re-reads from replicas, but a
dead *driver* loses the chain's in-memory state. The checkpointing
driver serialises everything a resume needs — the algorithm's own
payload, the chain totals, the cached-file set, and both runtime RNG
streams — to the DFS after every iteration, so a restarted driver can
continue the chain and produce results byte-identical to a run that was
never interrupted.
"""

from __future__ import annotations

import pickle
import re
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, DataFormatError
from repro.mapreduce.counters import (
    FRAMEWORK_GROUP,
    USER_GROUP,
    Counters,
    MRCounter,
    UserCounter,
)
from repro.mapreduce.hdfs import DFSFile
from repro.mapreduce.job import Job
from repro.mapreduce.runtime import JobResult, MapReduceRuntime

#: On-DFS checkpoint format version (bump on incompatible layout change).
CHECKPOINT_VERSION = 1

_CHECKPOINT_NAME = re.compile(r"iter-(\d{5})$")


@dataclass
class ChainTotals:
    """Aggregate accounting over a chain of jobs."""

    jobs: int = 0
    simulated_seconds: float = 0.0
    counters: Counters = field(default_factory=Counters)

    @property
    def dataset_reads(self) -> int:
        return self.counters.get(FRAMEWORK_GROUP, MRCounter.DATASET_READS)

    @property
    def cached_reads(self) -> int:
        return self.counters.get(FRAMEWORK_GROUP, MRCounter.CACHED_READS)

    @property
    def distance_computations(self) -> int:
        return self.counters.get(USER_GROUP, UserCounter.DISTANCE_COMPUTATIONS)

    @property
    def ad_tests(self) -> int:
        return self.counters.get(USER_GROUP, UserCounter.AD_TESTS)

    @property
    def cluster_tests(self) -> int:
        """Logical per-cluster normality decisions (the paper's "2k
        Anderson-Darling tests"); mapper-side voting may run several
        raw AD tests per decision — see ``ad_tests`` for that count."""
        return self.counters.get(USER_GROUP, UserCounter.CLUSTER_TESTS)

    @property
    def shuffle_bytes(self) -> int:
        return self.counters.get(FRAMEWORK_GROUP, MRCounter.SHUFFLE_BYTES)


class JobChainDriver:
    """Runs a sequence of jobs, accumulating totals.

    ``cache_input=True`` emulates an execution engine that keeps the
    dataset in memory between jobs (the paper's SPARK discussion): the
    first job over a file pays the disk read, later ones do not.
    """

    def __init__(self, runtime: MapReduceRuntime, cache_input: bool = False):
        self.runtime = runtime
        self.cache_input = cache_input
        self.totals = ChainTotals()
        self._cached_files: set[str] = set()

    def run(self, job: Job, input_file: "DFSFile | str") -> JobResult:
        """Run one job and fold its accounting into the chain totals."""
        name = input_file if isinstance(input_file, str) else input_file.name
        cached = self.cache_input and name in self._cached_files
        result = self.runtime.run(job, input_file, cached=cached)
        if self.cache_input:
            self._cached_files.add(name)
        self.totals.jobs += 1
        self.totals.simulated_seconds += result.simulated_seconds
        self.totals.counters.merge(result.counters)
        return result


@dataclass
class ChainCheckpoint:
    """One durable snapshot of a job chain, as stored on the DFS.

    ``payload`` is the algorithm's own state (the driver never looks
    inside it); the remaining fields restore the chain's accounting and
    the runtime's two RNG streams, which is what makes a resumed run
    byte-identical to an uninterrupted one.
    """

    iteration: int
    payload: dict
    jobs: int
    simulated_seconds: float
    counters: dict
    cached_files: list[str]
    runtime_rng_state: dict
    fault_rng_state: dict
    version: int = CHECKPOINT_VERSION
    # Node-failure-domain state (None when recorded by a pre-node-fault
    # driver — the fields are optional so version 1 checkpoints stay
    # readable in both directions): the node-fault RNG stream and the
    # per-node status/failure-count snapshots. Restoring both makes a
    # resumed run draw the exact node-fault schedule an uninterrupted
    # run would have seen.
    node_rng_state: "dict | None" = None
    node_states: "tuple | None" = None

    def restore_totals(self) -> ChainTotals:
        """Rebuild the :class:`ChainTotals` this snapshot captured."""
        return ChainTotals(
            jobs=self.jobs,
            simulated_seconds=self.simulated_seconds,
            counters=Counters.from_dict(self.counters),
        )


def checkpoint_file_name(checkpoint_dir: str, iteration: int) -> str:
    """DFS name of the checkpoint written after ``iteration``."""
    return f"{checkpoint_dir.rstrip('/')}/iter-{iteration:05d}"


class CheckpointingJobChainDriver(JobChainDriver):
    """A job-chain driver that survives driver death.

    After every iteration the algorithm calls :meth:`save_checkpoint`
    with its own serialised state; the driver adds the chain totals,
    the cached-file set and the runtime RNG states, pickles the bundle
    and writes it to the DFS under ``checkpoint_dir`` (charging the
    write, replicated like any other file). A fresh driver process —
    same DFS, same configuration — calls :meth:`load_checkpoint` (or
    resolves :meth:`latest_checkpoint`) to restore the chain and hand
    the payload back to the algorithm.
    """

    def __init__(
        self,
        runtime: MapReduceRuntime,
        cache_input: bool = False,
        checkpoint_dir: str = "checkpoints",
    ):
        super().__init__(runtime, cache_input=cache_input)
        if not checkpoint_dir:
            raise ConfigurationError("checkpoint_dir must be a non-empty DFS path")
        self.checkpoint_dir = checkpoint_dir.rstrip("/")

    # -- save ------------------------------------------------------------

    def save_checkpoint(self, iteration: int, payload: dict) -> str:
        """Write the post-``iteration`` snapshot; returns its DFS name."""
        checkpoint = ChainCheckpoint(
            iteration=int(iteration),
            payload=payload,
            jobs=self.totals.jobs,
            simulated_seconds=self.totals.simulated_seconds,
            counters=self.totals.counters.as_dict(),
            cached_files=sorted(self._cached_files),
            runtime_rng_state=self.runtime.rng_state,
            fault_rng_state=self.runtime.fault_rng_state,
            node_rng_state=self.runtime.node_rng_state,
            node_states=self.runtime.cluster_state.snapshot(),
        )
        name = checkpoint_file_name(self.checkpoint_dir, iteration)
        blob = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
        self.runtime.dfs.write(
            name, [blob], bytes_per_record=len(blob), overwrite=True
        )
        self.runtime.journal.event(
            "checkpoint_write", name=name, iteration=int(iteration), bytes=len(blob)
        )
        return name

    # -- load ------------------------------------------------------------

    def latest_checkpoint(self) -> "str | None":
        """Name of the newest checkpoint under ``checkpoint_dir``."""
        prefix = self.checkpoint_dir + "/"
        best_name, best_iteration = None, -1
        for name in self.runtime.dfs.listdir():
            if not name.startswith(prefix):
                continue
            match = _CHECKPOINT_NAME.search(name)
            if match and int(match.group(1)) > best_iteration:
                best_name, best_iteration = name, int(match.group(1))
        return best_name

    def load_checkpoint(self, name: "str | None" = None) -> ChainCheckpoint:
        """Restore the chain from checkpoint ``name`` (default: latest).

        Resets the chain totals, the cached-file set and both runtime
        RNG streams to the snapshot, then returns it so the algorithm
        can restore its own ``payload``.
        """
        if name is None:
            name = self.latest_checkpoint()
            if name is None:
                raise DataFormatError(
                    f"no checkpoint found under {self.checkpoint_dir!r}"
                )
        records = self.runtime.dfs.read_all(name)
        try:
            checkpoint = pickle.loads(records[0])
        except Exception as exc:
            raise DataFormatError(
                f"{name!r} is not a chain checkpoint: {exc}"
            ) from exc
        if not isinstance(checkpoint, ChainCheckpoint):
            raise DataFormatError(f"{name!r} is not a chain checkpoint")
        if checkpoint.version != CHECKPOINT_VERSION:
            raise DataFormatError(
                f"checkpoint {name!r} has version {checkpoint.version}, "
                f"this driver reads version {CHECKPOINT_VERSION}"
            )
        self.totals = checkpoint.restore_totals()
        self._cached_files = set(checkpoint.cached_files)
        self.runtime.rng_state = checkpoint.runtime_rng_state
        self.runtime.fault_rng_state = checkpoint.fault_rng_state
        if checkpoint.node_rng_state is not None:
            self.runtime.node_rng_state = checkpoint.node_rng_state
        if checkpoint.node_states is not None:
            self.runtime.cluster_state.restore(checkpoint.node_states)
        # The restored totals are the journal's accounting baseline: a
        # resumed run's journal only sees post-resume jobs, so replay
        # adds these back when cross-checking against the final totals.
        self.runtime.journal.event(
            "checkpoint_restore",
            name=name,
            iteration=checkpoint.iteration,
            jobs=checkpoint.jobs,
            simulated_seconds=checkpoint.simulated_seconds,
            counters=checkpoint.counters,
        )
        return checkpoint
