"""Chained-job driver with aggregate accounting.

Iterative algorithms such as G-means chain many MapReduce jobs over the
same input dataset; the paper's cost model counts the resulting dataset
reads explicitly (``O(4 log2 k)`` of them). The driver accumulates
counters and simulated time across the chain and implements the
Spark-style ``cache_input`` optimisation from the paper's future-work
section: after the first read, subsequent jobs over the same file are
served from (simulated) memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mapreduce.counters import (
    FRAMEWORK_GROUP,
    USER_GROUP,
    Counters,
    MRCounter,
    UserCounter,
)
from repro.mapreduce.hdfs import DFSFile
from repro.mapreduce.job import Job
from repro.mapreduce.runtime import JobResult, MapReduceRuntime


@dataclass
class ChainTotals:
    """Aggregate accounting over a chain of jobs."""

    jobs: int = 0
    simulated_seconds: float = 0.0
    counters: Counters = field(default_factory=Counters)

    @property
    def dataset_reads(self) -> int:
        return self.counters.get(FRAMEWORK_GROUP, MRCounter.DATASET_READS)

    @property
    def cached_reads(self) -> int:
        return self.counters.get(FRAMEWORK_GROUP, MRCounter.CACHED_READS)

    @property
    def distance_computations(self) -> int:
        return self.counters.get(USER_GROUP, UserCounter.DISTANCE_COMPUTATIONS)

    @property
    def ad_tests(self) -> int:
        return self.counters.get(USER_GROUP, UserCounter.AD_TESTS)

    @property
    def cluster_tests(self) -> int:
        """Logical per-cluster normality decisions (the paper's "2k
        Anderson-Darling tests"); mapper-side voting may run several
        raw AD tests per decision — see ``ad_tests`` for that count."""
        return self.counters.get(USER_GROUP, UserCounter.CLUSTER_TESTS)

    @property
    def shuffle_bytes(self) -> int:
        return self.counters.get(FRAMEWORK_GROUP, MRCounter.SHUFFLE_BYTES)


class JobChainDriver:
    """Runs a sequence of jobs, accumulating totals.

    ``cache_input=True`` emulates an execution engine that keeps the
    dataset in memory between jobs (the paper's SPARK discussion): the
    first job over a file pays the disk read, later ones do not.
    """

    def __init__(self, runtime: MapReduceRuntime, cache_input: bool = False):
        self.runtime = runtime
        self.cache_input = cache_input
        self.totals = ChainTotals()
        self._cached_files: set[str] = set()

    def run(self, job: Job, input_file: "DFSFile | str") -> JobResult:
        """Run one job and fold its accounting into the chain totals."""
        name = input_file if isinstance(input_file, str) else input_file.name
        cached = self.cache_input and name in self._cached_files
        result = self.runtime.run(job, input_file, cached=cached)
        if self.cache_input:
            self._cached_files.add(name)
        self.totals.jobs += 1
        self.totals.simulated_seconds += result.simulated_seconds
        self.totals.counters.merge(result.counters)
        return result
