"""Deterministic cost model: counters -> simulated seconds.

The paper reports wall-clock times measured on a Hadoop testbed. Those
absolute numbers are testbed-specific; what the evaluation section
actually demonstrates is *how* time scales — linearly in k for G-means,
quadratically for multi-k-means, and inversely with the node count.

The simulator therefore charges every task for the work it really
performed (bytes read, records processed, coordinate operations in
distance computations, Anderson-Darling sample points) using a linear
cost model with calibratable constants, and schedules tasks onto the
cluster's slots with an LPT (longest-processing-time-first) greedy
assignment to obtain a makespan. Simulated time then exhibits exactly
the scaling behaviour the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.validation import check_non_negative, check_positive
from repro.mapreduce.cluster import MIB, ClusterConfig
from repro.mapreduce.counters import (
    FRAMEWORK_GROUP,
    USER_GROUP,
    Counters,
    MRCounter,
    UserCounter,
)


@dataclass(frozen=True)
class CostParameters:
    """Per-unit costs of the simulated testbed.

    Defaults are loosely calibrated to a commodity 2014-era node
    (sequential disk ~100 MB/s, 1 GbE network, a few ns per floating
    point multiply-add across JVM overheads) — close enough that the
    simulated G-means/multi-k-means crossover lands where the paper's
    Figure 3 puts it.
    """

    disk_read_mbps: float = 100.0
    disk_write_mbps: float = 80.0
    network_mbps_per_node: float = 120.0
    seconds_per_coordinate_op: float = 2e-9
    seconds_per_map_record: float = 4e-7
    seconds_per_shuffle_record: float = 2e-7
    seconds_per_reduce_record: float = 3e-7
    seconds_per_ad_point: float = 5e-8
    task_startup_seconds: float = 1.0
    job_startup_seconds: float = 5.0

    def __post_init__(self) -> None:
        check_positive("disk_read_mbps", self.disk_read_mbps)
        check_positive("disk_write_mbps", self.disk_write_mbps)
        check_positive("network_mbps_per_node", self.network_mbps_per_node)
        for name in (
            "seconds_per_coordinate_op",
            "seconds_per_map_record",
            "seconds_per_shuffle_record",
            "seconds_per_reduce_record",
            "seconds_per_ad_point",
            "task_startup_seconds",
            "job_startup_seconds",
        ):
            check_non_negative(name, getattr(self, name))


@dataclass(frozen=True)
class JobTiming:
    """Per-phase simulated times of one job."""

    startup_seconds: float
    map_seconds: float
    shuffle_seconds: float
    reduce_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.startup_seconds
            + self.map_seconds
            + self.shuffle_seconds
            + self.reduce_seconds
        )


def makespan(task_seconds: list[float], slots: int) -> float:
    """Makespan of scheduling ``task_seconds`` onto ``slots`` identical
    slots with the LPT greedy rule (deterministic, 4/3-optimal)."""
    check_positive("slots", slots)
    if not task_seconds:
        return 0.0
    loads = [0.0] * min(slots, len(task_seconds))
    for t in sorted(task_seconds, reverse=True):
        i = min(range(len(loads)), key=loads.__getitem__)
        loads[i] += t
    return max(loads)


def lpt_schedule(
    task_seconds: "list[float]", slots: int
) -> "list[tuple[int, int, float, float]]":
    """Full LPT placement: ``(task_index, slot, start, end)`` per task.

    The same deterministic greedy rule as :func:`makespan` — tasks
    longest-first (ties broken by lower index), each onto the currently
    least-loaded slot — so ``max(end for ...)`` equals the makespan the
    cost model charged. This is the shared scheduling hook behind the
    Gantt renderer (:mod:`repro.mapreduce.trace`), the critical-path
    extractor and the what-if re-scheduler
    (:mod:`repro.observability.critical` / ``.whatif``). Result is
    sorted by ``(slot, start)``.
    """
    check_positive("slots", slots)
    order = sorted(range(len(task_seconds)), key=lambda i: -task_seconds[i])
    loads = [0.0] * min(slots, max(1, len(task_seconds)))
    placed = []
    for index in order:
        slot = min(range(len(loads)), key=loads.__getitem__)
        start = loads[slot]
        end = start + task_seconds[index]
        loads[slot] = end
        placed.append((index, slot, start, end))
    return sorted(placed, key=lambda t: (t[1], t[2]))


def critical_chain(
    task_seconds: "list[float]", slots: int
) -> "list[int]":
    """Task indices on the LPT schedule's longest slot, in start order.

    The returned chain's durations sum to :func:`makespan` — it is the
    sequence of tasks that bounds the phase, which is what the
    critical-path extractor reports per phase. Empty when there are no
    tasks.
    """
    placement = lpt_schedule(task_seconds, slots)
    if not placement:
        return []
    completion: dict[int, float] = {}
    for _, slot, _, end in placement:
        completion[slot] = max(completion.get(slot, 0.0), end)
    worst = min(
        (slot for slot in completion),
        key=lambda slot: (-completion[slot], slot),
    )
    return [index for index, slot, _, _ in placement if slot == worst]


class CostModel:
    """Converts task-level counters into simulated task/job times."""

    def __init__(self, params: CostParameters, cluster: ClusterConfig):
        self.params = params
        self.cluster = cluster

    # -- per-task ------------------------------------------------------

    def _user_cpu_seconds(self, c: Counters) -> float:
        p = self.params
        return (
            c.get(USER_GROUP, UserCounter.COORDINATE_OPS) * p.seconds_per_coordinate_op
            + c.get(USER_GROUP, UserCounter.AD_SAMPLE_POINTS) * p.seconds_per_ad_point
        )

    def map_task_seconds(self, task_counters: Counters, input_bytes: int, cached: bool = False) -> float:
        """Simulated duration of one map task.

        ``cached`` models the Spark-style in-memory input the paper's
        future-work section describes: the disk-read term disappears.
        """
        p = self.params
        read = 0.0 if cached else input_bytes / (p.disk_read_mbps * MIB)
        records = task_counters.get(FRAMEWORK_GROUP, MRCounter.MAP_INPUT_RECORDS)
        out = task_counters.get(FRAMEWORK_GROUP, MRCounter.MAP_OUTPUT_RECORDS)
        return (
            p.task_startup_seconds
            + read
            + records * p.seconds_per_map_record
            + out * p.seconds_per_shuffle_record
            + self._user_cpu_seconds(task_counters)
        )

    def reduce_task_seconds(self, task_counters: Counters) -> float:
        """Simulated duration of one reduce task (excluding shuffle)."""
        p = self.params
        records = task_counters.get(FRAMEWORK_GROUP, MRCounter.REDUCE_INPUT_RECORDS)
        return (
            p.task_startup_seconds
            + records * p.seconds_per_reduce_record
            + self._user_cpu_seconds(task_counters)
        )

    # -- per-phase -----------------------------------------------------

    def shuffle_seconds(
        self, shuffle_bytes: int, nodes: "int | None" = None
    ) -> float:
        """Time to move ``shuffle_bytes`` across the cluster fabric.

        ``nodes`` overrides the configured node count with the number of
        machines actually serving (the fabric shrinks when nodes die).
        """
        node_count = self.cluster.nodes if nodes is None else max(1, int(nodes))
        bandwidth = self.params.network_mbps_per_node * node_count * MIB
        return shuffle_bytes / bandwidth

    def job_timing(
        self,
        map_task_seconds: list[float],
        reduce_task_seconds: list[float],
        shuffle_bytes: int,
        map_makespan_override: float | None = None,
        map_slots: "int | None" = None,
        reduce_slots: "int | None" = None,
        nodes: "int | None" = None,
    ) -> JobTiming:
        """Assemble per-phase times into the job's simulated duration.

        ``map_makespan_override`` replaces the slot-anonymous LPT map
        makespan with one computed by a smarter scheduler (e.g. the
        locality-aware one in :mod:`repro.mapreduce.locality`).

        ``map_slots`` / ``reduce_slots`` / ``nodes`` override the
        configured capacity with the cluster's *live* capacity, so that
        node loss degrades the makespan (fewer slots, narrower shuffle
        fabric) without touching what any task computed. Defaults keep
        the historical static-capacity behaviour.
        """
        if map_makespan_override is None:
            map_seconds = makespan(
                map_task_seconds,
                self.cluster.total_map_slots if map_slots is None else map_slots,
            )
        else:
            map_seconds = map_makespan_override
        return JobTiming(
            startup_seconds=self.params.job_startup_seconds,
            map_seconds=map_seconds,
            shuffle_seconds=self.shuffle_seconds(shuffle_bytes, nodes=nodes),
            reduce_seconds=makespan(
                reduce_task_seconds,
                self.cluster.total_reduce_slots
                if reduce_slots is None
                else reduce_slots,
            ),
        )
