"""Node-level failure domains: live cluster state over the frozen
:class:`~repro.mapreduce.cluster.ClusterConfig`, plus the correlated
node-fault model.

The paper runs on a 4–12 node Hadoop 1.x testbed where the *node* is
the real failure unit: when one dies, all of its map/reduce slots, its
in-flight tasks and its HDFS replicas go with it, and the JobTracker
only notices after a heartbeat timeout. ``ClusterConfig`` deliberately
stays frozen (it is the topology being *simulated*); this module adds
the mutable layer on top:

* :class:`NodeState` / :class:`ClusterState` — per-node lifecycle
  (alive / dead / blacklisted / decommissioned) and the *live* capacity
  derived from it (``total_map_slots`` / ``total_reduce_slots`` shrink
  as nodes drop out). ``ClusterState`` exposes the same capacity
  properties as ``ClusterConfig``, so the Section-3.2 switching rule
  (:func:`repro.core.strategy.decide_test_strategy`) accepts either —
  that is how a node loss can flip the test-strategy decision.
* :class:`NodeFaultModel` — seeded, correlated node loss and recovery
  with heartbeat-timeout detection. Same concurrency contract as
  :class:`~repro.mapreduce.faults.FaultModel`: draws happen in the
  submitting process only, from a dedicated stream, in node-id order,
  so enabling node faults perturbs capacity and simulated time
  deterministically across every executor backend and data plane.

Blacklisting mirrors Hadoop's TaskTracker blacklist: a node whose
tasks keep failing stops *receiving* tasks (it leaves the schedulable
set) but keeps *serving* its DFS replicas — only death loses blocks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import check_in_range, check_positive
from repro.mapreduce.cluster import ClusterConfig

#: Environment variables consulted by :meth:`NodeFaultModel.from_env`
#: (the node-chaos switch; the CLI's ``--node-failure-prob`` /
#: ``--node-recovery-prob`` / ``--heartbeat-timeout`` flags write the
#: first three).
NODE_FAILURE_PROB_ENV = "REPRO_NODE_FAILURE_PROB"
NODE_RECOVERY_PROB_ENV = "REPRO_NODE_RECOVERY_PROB"
HEARTBEAT_TIMEOUT_ENV = "REPRO_HEARTBEAT_TIMEOUT"
NODE_FAULT_SEED_ENV = "REPRO_NODE_FAULT_SEED"
BLACKLIST_THRESHOLD_ENV = "REPRO_BLACKLIST_THRESHOLD"

#: Node lifecycle statuses.
NODE_ALIVE = "alive"
NODE_DEAD = "dead"
NODE_BLACKLISTED = "blacklisted"
NODE_DECOMMISSIONED = "decommissioned"
NODE_STATUSES = (NODE_ALIVE, NODE_DEAD, NODE_BLACKLISTED, NODE_DECOMMISSIONED)

#: Statuses whose nodes still host DFS replicas (everything but dead:
#: a blacklisted node stopped receiving tasks, not serving blocks, and
#: a decommissioned node drains gracefully — its replicas were copied
#: off before it left, which the simulation models as still-readable).
SERVING_STATUSES = (NODE_ALIVE, NODE_BLACKLISTED)

#: The draw kinds :meth:`NodeFaultModel.draw` can yield.
NODE_FAIL = "fail"
NODE_RECOVER = "recover"


@dataclass
class NodeState:
    """Mutable lifecycle record of one simulated node."""

    node_id: int
    status: str = NODE_ALIVE
    #: Task failures attributed to this node since it last recovered
    #: (feeds the blacklist threshold).
    task_failures: int = 0
    deaths: int = 0
    recoveries: int = 0

    @property
    def schedulable(self) -> bool:
        """True when the node may receive map/reduce tasks."""
        return self.status == NODE_ALIVE

    @property
    def serving(self) -> bool:
        """True when the node still hosts readable DFS replicas."""
        return self.status in SERVING_STATUSES

    def snapshot(self) -> dict:
        """JSON/pickle-ready copy (checkpoints, journal attributes)."""
        return {
            "node_id": self.node_id,
            "status": self.status,
            "task_failures": self.task_failures,
            "deaths": self.deaths,
            "recoveries": self.recoveries,
        }


class ClusterState:
    """Live node states over a frozen :class:`ClusterConfig`.

    Exposes the same capacity surface as the config
    (``total_map_slots``, ``total_reduce_slots``,
    ``usable_heap_bytes``, ``executor_concurrency``) but computed over
    the currently *schedulable* nodes, so every consumer of capacity —
    the LPT cost model, locality scheduling, executor concurrency, the
    Section-3.2 strategy rule — can be pointed at the live view without
    changing shape. With every node alive the numbers are identical to
    the config's, which is what keeps fault-free runs byte-identical.
    """

    def __init__(
        self,
        config: ClusterConfig,
        blacklist_threshold: "int | None" = None,
    ):
        if blacklist_threshold is not None:
            check_positive("blacklist_threshold", blacklist_threshold)
        self.config = config
        self.blacklist_threshold = blacklist_threshold
        self.node_states = [NodeState(node_id=i) for i in range(config.nodes)]

    # -- capacity (the ClusterConfig-compatible surface) -----------------

    @property
    def schedulable_node_ids(self) -> "list[int]":
        """Ids of nodes currently accepting tasks, ascending."""
        return [n.node_id for n in self.node_states if n.schedulable]

    @property
    def serving_node_ids(self) -> "list[int]":
        """Ids of nodes currently hosting DFS replicas, ascending."""
        return [n.node_id for n in self.node_states if n.serving]

    @property
    def all_alive(self) -> bool:
        """True when live capacity equals the configured capacity."""
        return all(n.status == NODE_ALIVE for n in self.node_states)

    @property
    def total_map_slots(self) -> int:
        return len(self.schedulable_node_ids) * self.config.map_slots_per_node

    @property
    def total_reduce_slots(self) -> int:
        return (
            len(self.schedulable_node_ids) * self.config.reduce_slots_per_node
        )

    @property
    def task_heap_bytes(self) -> int:
        return self.config.task_heap_bytes

    @property
    def usable_heap_bytes(self) -> int:
        return self.config.usable_heap_bytes

    def executor_concurrency(self, phase: str) -> int:
        """Live-slot bound on real executor parallelism for ``phase``."""
        if phase == "map":
            return max(1, self.total_map_slots)
        if phase == "reduce":
            return max(1, self.total_reduce_slots)
        raise ConfigurationError(f"unknown phase {phase!r}")

    # -- lifecycle transitions -------------------------------------------

    def _node(self, node_id: int) -> NodeState:
        if not 0 <= node_id < len(self.node_states):
            raise ConfigurationError(
                f"node {node_id} not in cluster of {len(self.node_states)}"
            )
        return self.node_states[node_id]

    def fail(self, node_id: int) -> NodeState:
        """Mark a node dead (its slots and replicas are gone)."""
        node = self._node(node_id)
        if node.status != NODE_DEAD:
            node.status = NODE_DEAD
            node.deaths += 1
        return node

    def recover(self, node_id: int) -> NodeState:
        """Bring a dead node back, empty and with a clean record."""
        node = self._node(node_id)
        if node.status == NODE_DEAD:
            node.status = NODE_ALIVE
            node.task_failures = 0
            node.recoveries += 1
        return node

    def blacklist(self, node_id: int) -> NodeState:
        """Stop scheduling tasks on a node (it keeps serving replicas)."""
        node = self._node(node_id)
        if node.status == NODE_ALIVE:
            node.status = NODE_BLACKLISTED
        return node

    def decommission(self, node_id: int) -> NodeState:
        """Retire a node gracefully: no tasks, replicas drained."""
        node = self._node(node_id)
        node.status = NODE_DECOMMISSIONED
        return node

    def record_task_failures(self, node_id: int, failures: int) -> bool:
        """Attribute ``failures`` task failures to a node.

        Returns True when this pushes the node over the blacklist
        threshold and it was actually blacklisted. The last schedulable
        node is never blacklisted — a cluster that cannot run tasks at
        all is a dead simulation, not a degraded one.
        """
        if failures <= 0:
            return False
        node = self._node(node_id)
        node.task_failures += failures
        if (
            self.blacklist_threshold is not None
            and node.status == NODE_ALIVE
            and node.task_failures >= self.blacklist_threshold
            and len(self.schedulable_node_ids) > 1
        ):
            self.blacklist(node_id)
            return True
        return False

    # -- persistence -----------------------------------------------------

    def snapshot(self) -> "list[dict]":
        """Checkpoint-ready copy of every node's state."""
        return [node.snapshot() for node in self.node_states]

    def restore(self, snapshots: "list[dict]") -> None:
        """Restore node states captured by :meth:`snapshot`."""
        for entry in snapshots:
            node = self._node(int(entry["node_id"]))
            node.status = str(entry["status"])
            node.task_failures = int(entry["task_failures"])
            node.deaths = int(entry["deaths"])
            node.recoveries = int(entry["recoveries"])

    def __iter__(self) -> Iterator[NodeState]:
        return iter(self.node_states)


@dataclass(frozen=True)
class NodeFaultModel:
    """Stochastic correlated node loss and recovery.

    Each scheduling round (one job attempt) every node consumes exactly
    one draw from the node-fault stream, in node-id order: a serving
    node fails with ``node_failure_probability``, a dead node recovers
    with ``node_recovery_probability``, a decommissioned node ignores
    its draw. The fixed-width stream means lifecycle changes never
    shift *which* draw a node sees, so fault schedules are stable under
    blacklisting and recovery.

    A death is detected after ``heartbeat_timeout_seconds`` of silence
    (charged to the job's overhead, as the JobTracker would stall), and
    the last serving node never dies — its draw is consumed, the kill
    is skipped — because a cluster with zero replicas is unrecoverable
    by construction, not an interesting failure.
    """

    node_failure_probability: float = 0.0
    node_recovery_probability: float = 0.0
    heartbeat_timeout_seconds: float = 30.0
    seed: int = 0
    #: Task failures on one node before it is blacklisted; ``None``
    #: disables blacklisting.
    blacklist_threshold: "int | None" = None

    def __post_init__(self) -> None:
        check_in_range(
            "node_failure_probability", self.node_failure_probability, 0.0, 1.0
        )
        check_in_range(
            "node_recovery_probability",
            self.node_recovery_probability,
            0.0,
            1.0,
        )
        check_positive(
            "heartbeat_timeout_seconds", self.heartbeat_timeout_seconds
        )
        if self.blacklist_threshold is not None:
            check_positive("blacklist_threshold", self.blacklist_threshold)

    @property
    def enabled(self) -> bool:
        return (
            self.node_failure_probability > 0.0
            or self.node_recovery_probability > 0.0
        )

    @classmethod
    def from_env(
        cls, environ: "Mapping[str, str] | None" = None
    ) -> "NodeFaultModel | None":
        """Build a model from the ``REPRO_NODE_*`` environment.

        Returns ``None`` when neither probability nor the blacklist
        threshold is set, so runtimes keep their node-fault-free
        default outside node-chaos runs. A threshold alone enables
        blacklisting of nodes that accumulate *task*-fault failures
        without any node-loss stochastics.
        """
        env = os.environ if environ is None else environ

        def _float(name: str, default: float) -> float:
            raw = (env.get(name) or "").strip()
            if not raw:
                return default
            try:
                return float(raw)
            except ValueError:
                raise ConfigurationError(
                    f"{name} must be a float, got {raw!r}"
                ) from None

        def _int(name: str) -> "int | None":
            raw = (env.get(name) or "").strip()
            if not raw:
                return None
            try:
                return int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"{name} must be an int, got {raw!r}"
                ) from None

        failure = _float(NODE_FAILURE_PROB_ENV, 0.0)
        recovery = _float(NODE_RECOVERY_PROB_ENV, 0.0)
        threshold = _int(BLACKLIST_THRESHOLD_ENV)
        if failure == 0.0 and recovery == 0.0 and threshold is None:
            return None
        return cls(
            node_failure_probability=failure,
            node_recovery_probability=recovery,
            heartbeat_timeout_seconds=_float(HEARTBEAT_TIMEOUT_ENV, 30.0),
            seed=_int(NODE_FAULT_SEED_ENV) or 0,
            blacklist_threshold=threshold,
        )

    def draw(
        self, state: ClusterState, rng: np.random.Generator
    ) -> "list[tuple[str, int]]":
        """One scheduling round of node-fault draws.

        Returns the lifecycle events to apply, as ``(kind, node_id)``
        tuples in node-id order (``kind`` ∈ ``{"fail", "recover"}``).
        The caller applies them — drawing and applying are split so the
        runtime can journal each transition with its cascade.
        """
        if not self.enabled:
            return []
        events: list[tuple[str, int]] = []
        serving = len(state.serving_node_ids)
        for node in state.node_states:
            value = rng.random()
            if node.status == NODE_DEAD:
                if value < self.node_recovery_probability:
                    events.append((NODE_RECOVER, node.node_id))
                    serving += 1
            elif node.serving:
                if value < self.node_failure_probability and serving > 1:
                    events.append((NODE_FAIL, node.node_id))
                    serving -= 1
            # decommissioned: the draw is consumed, nothing happens —
            # the stream stays fixed-width per round.
        return events
