"""Shuffle machinery: grouping, combiner application, partitioning.

Mirrors Hadoop's data path: map output is combined once per map task
(Hadoop applies the combiner per spill; one spill per task in this
simulation), hash-partitioned across reduce tasks, then sort-merged by
key inside each reduce task.

Shuffle data is the *by-value* boundary of the zero-copy data plane
(:mod:`repro.mapreduce.dataplane`): input splits live in long-lived
shared segments, but shuffle pairs always travel by pickle. They are
ephemeral — born in one phase, consumed in the next — and combiners
shrink them to a handful of per-key aggregates per task, so segment
churn (create/attach/release per phase, with worker-side attachment
caches that would outlive the data) would cost more than the copies it
avoids. Real Hadoop draws the same line: blocks live in HDFS, shuffle
spills move over the wire.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

import numpy as np

from repro.mapreduce.counters import FRAMEWORK_GROUP, Counters, MRCounter
from repro.mapreduce.job import CombineContext, Reducer


def group_by_key(pairs: list[tuple[object, object]]) -> dict:
    """Group ``(key, value)`` pairs into ``key -> [values]``."""
    groups: dict = defaultdict(list)
    for key, value in pairs:
        groups[key].append(value)
    return groups


def sorted_keys(groups: dict) -> list:
    """Keys in the deterministic shuffle order (Hadoop sorts keys)."""
    return sorted(groups)


def run_combiner(
    combiner_factory: Callable[[], Reducer],
    pairs: list[tuple[object, object]],
    config: dict,
    counters: Counters,
    rng: np.random.Generator,
    heap_bytes: int,
    task_id: str,
) -> list[tuple[object, object]]:
    """Apply the job's combiner to one map task's output.

    Returns the combined pairs that will actually enter the shuffle.
    """
    groups = group_by_key(pairs)
    counters.inc(FRAMEWORK_GROUP, MRCounter.COMBINE_INPUT_RECORDS, len(pairs))
    ctx = CombineContext(config, counters, rng, heap_bytes, f"{task_id}-combine")
    combiner = combiner_factory()
    combiner.setup(ctx)
    for key in sorted_keys(groups):
        combiner.reduce(key, groups[key], ctx)
    combiner.close(ctx)
    return ctx.emitted


def partition_pairs(
    pairs: list[tuple[object, object]],
    num_reducers: int,
    partitioner: Callable[[object, int], int],
) -> list[list[tuple[object, object]]]:
    """Split pairs into one bucket per reduce task."""
    buckets: list[list[tuple[object, object]]] = [[] for _ in range(num_reducers)]
    for key, value in pairs:
        index = partitioner(key, num_reducers)
        if not 0 <= index < num_reducers:
            raise ValueError(
                f"partitioner returned {index} for {num_reducers} reducers"
            )
        buckets[index].append((key, value))
    return buckets
