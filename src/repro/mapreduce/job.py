"""The user-facing MapReduce programming model.

Jobs are written exactly as for Hadoop: a :class:`Mapper` with
``setup`` / ``map`` / ``close`` (``close`` is what lets
``TestFewClusters`` run its Anderson-Darling tests mapper-side after
seeing the whole split), an optional combiner, and a :class:`Reducer`.
Mappers may override :meth:`Mapper.map_split` to process a whole input
split vectorised — the "hybrid design" knob that makes the simulation
fast without changing job semantics, mirroring how production Hadoop
jobs push work into per-split buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.common.errors import ConfigurationError, JavaHeapSpaceError
from repro.mapreduce.counters import (
    FRAMEWORK_GROUP,
    USER_GROUP,
    Counters,
    MRCounter,
    UserCounter,
)
from repro.mapreduce.hdfs import Split
from repro.mapreduce.types import sizeof_value, stable_hash


class TaskContext:
    """Execution context shared by map, combine and reduce tasks.

    Exposes the job configuration, a per-task deterministic RNG,
    per-task counters, and explicit heap accounting: tasks call
    :meth:`allocate` for buffers they materialise, and exceeding the
    simulated JVM heap raises :class:`JavaHeapSpaceError` — exactly the
    failure mode the paper measures in Figure 2.
    """

    def __init__(
        self,
        config: dict,
        counters: Counters,
        rng: np.random.Generator,
        heap_bytes: int,
        task_id: str,
    ):
        self.config = config
        self.counters = counters
        self.rng = rng
        self.task_id = task_id
        self._heap_limit = int(heap_bytes)
        self._heap_used = 0
        self.heap_high_water = 0

    # -- heap ------------------------------------------------------------

    def allocate(self, nbytes: int) -> None:
        """Account ``nbytes`` of task-heap usage; fail like a JVM OOM."""
        self._heap_used += int(nbytes)
        if self._heap_used > self.heap_high_water:
            self.heap_high_water = self._heap_used
        if self._heap_used > self._heap_limit:
            raise JavaHeapSpaceError(self._heap_used, self._heap_limit, self.task_id)

    def free(self, nbytes: int) -> None:
        """Release previously allocated task-heap bytes."""
        self._heap_used = max(0, self._heap_used - int(nbytes))

    # -- counters --------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a user counter."""
        self.counters.inc(USER_GROUP, name, amount)

    def count_distances(self, n_distances: int, dimensions: int) -> None:
        """Record ``n_distances`` point-center distance evaluations in
        ``dimensions``-dimensional space (both the count the paper's
        cost model tracks and the coordinate ops the simulator bills)."""
        self.counters.inc(USER_GROUP, UserCounter.DISTANCE_COMPUTATIONS, n_distances)
        self.counters.inc(
            USER_GROUP, UserCounter.COORDINATE_OPS, n_distances * dimensions
        )


class MapContext(TaskContext):
    """Context handed to mappers; collects emitted key/value pairs."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.emitted: list[tuple[object, object]] = []

    def emit(self, key: object, value: object, records: int = 1) -> None:
        """Emit one intermediate pair.

        ``records`` is the *logical* record count of the value: a
        mapper batching a whole split's projections into one numpy
        array passes ``records=len(array)`` so framework counters (and
        the paper-facing cost accounting) stay identical to a
        one-pair-per-point implementation.
        """
        self.emitted.append((key, value))
        self.counters.inc(FRAMEWORK_GROUP, MRCounter.MAP_OUTPUT_RECORDS, records)


class ReduceContext(TaskContext):
    """Context handed to reducers; collects final output pairs."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.emitted: list[tuple[object, object]] = []

    def emit(self, key: object, value: object, records: int = 1) -> None:
        self.emitted.append((key, value))
        self.counters.inc(FRAMEWORK_GROUP, MRCounter.REDUCE_OUTPUT_RECORDS, records)


class CombineContext(TaskContext):
    """Context for combiner invocations (output feeds the shuffle)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.emitted: list[tuple[object, object]] = []

    def emit(self, key: object, value: object, records: int = 1) -> None:
        self.emitted.append((key, value))
        self.counters.inc(FRAMEWORK_GROUP, MRCounter.COMBINE_OUTPUT_RECORDS, records)


class Mapper:
    """Base mapper. Subclasses override :meth:`map` (per record) or
    :meth:`map_split` (whole split, vectorised)."""

    def setup(self, ctx: MapContext) -> None:
        """Called once per task before any input (Hadoop ``setup``)."""

    def map(self, key: object, value: object, ctx: MapContext) -> None:
        """Process one input record."""
        raise NotImplementedError

    def map_split(self, split: Split, ctx: MapContext) -> None:
        """Process one whole split; defaults to record-at-a-time."""
        for offset, record in enumerate(split.records):
            self.map(offset, record, ctx)

    def close(self, ctx: MapContext) -> None:
        """Called once per task after all input (Hadoop ``cleanup``)."""


class Reducer:
    """Base reducer (also the base for combiners)."""

    def setup(self, ctx: TaskContext) -> None:
        """Called once per task before any group."""

    def reduce(self, key: object, values: list, ctx: TaskContext) -> None:
        """Process one key group."""
        raise NotImplementedError

    def close(self, ctx: TaskContext) -> None:
        """Called once per task after the last group."""


def default_partitioner(key: object, num_reducers: int) -> int:
    """Hash partitioner (Hadoop's default)."""
    return stable_hash(key) % num_reducers


@dataclass
class Job:
    """Declarative description of one MapReduce job.

    ``heap_bytes_per_value`` models reduce-side materialisation: when
    set, the runtime charges ``sum(heap_bytes_per_value(v))`` of task
    heap per key group before calling :meth:`Reducer.reduce`, so a
    reducer that buffers every projection of a huge cluster fails with
    ``JavaHeapSpaceError`` just as the paper's Figure 2 shows. ``None``
    means the reducer streams its values (classic k-means reduction).
    """

    name: str
    mapper: Callable[[], Mapper]
    reducer: Callable[[], Reducer] | None = None
    combiner: Callable[[], Reducer] | None = None
    num_reduce_tasks: int = 0
    partitioner: Callable[[object, int], int] = default_partitioner
    config: dict = field(default_factory=dict)
    heap_bytes_per_value: Callable[[object], int] | None = None
    value_size: Callable[[object], int] = sizeof_value
    #: True when the combiner is pure pre-aggregation the reducer
    #: replicates exactly, so dropping it changes shuffle volume (and
    #: simulated time) but never results. The runtime journals the
    #: flag on every job span; the what-if re-scheduler scales only
    #: flagged jobs when asked to predict a combiner-less run.
    combiner_optional: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("job name must be non-empty")
        if self.combiner_optional and self.combiner is None:
            raise ConfigurationError(
                f"job {self.name!r} marks its combiner optional but has none"
            )
        if self.reducer is not None and self.num_reduce_tasks < 0:
            raise ConfigurationError(
                f"num_reduce_tasks must be >= 0, got {self.num_reduce_tasks}"
            )
