"""Hadoop-style counters.

Counters are the measurement backbone of the reproduction: the paper's
Section-4 cost model is stated in terms of dataset reads, distance
computations, Anderson-Darling tests and shuffled bytes, and the
benchmark harness validates the closed-form model against the counters
the runtime actually records.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator


class MRCounter:
    """Names of the framework counters maintained by the runtime."""

    MAP_INPUT_RECORDS = "MAP_INPUT_RECORDS"
    MAP_OUTPUT_RECORDS = "MAP_OUTPUT_RECORDS"
    COMBINE_INPUT_RECORDS = "COMBINE_INPUT_RECORDS"
    COMBINE_OUTPUT_RECORDS = "COMBINE_OUTPUT_RECORDS"
    REDUCE_INPUT_GROUPS = "REDUCE_INPUT_GROUPS"
    REDUCE_INPUT_RECORDS = "REDUCE_INPUT_RECORDS"
    REDUCE_OUTPUT_RECORDS = "REDUCE_OUTPUT_RECORDS"
    SHUFFLE_BYTES = "SHUFFLE_BYTES"
    HDFS_BYTES_READ = "HDFS_BYTES_READ"
    HDFS_BYTES_WRITTEN = "HDFS_BYTES_WRITTEN"
    DATASET_READS = "DATASET_READS"
    CACHED_READS = "CACHED_READS"
    MAP_TASKS = "MAP_TASKS"
    REDUCE_TASKS = "REDUCE_TASKS"
    # Fault-tolerance counters: whole-job re-executions after a
    # permanent task failure, physical block copies lost in the DFS,
    # and reads served from a non-primary replica after failover.
    JOB_RETRIES = "JOB_RETRIES"
    BLOCKS_LOST = "BLOCKS_LOST"
    REPLICA_READS = "REPLICA_READS"
    # Machine-seconds spent on work that produced no output: failed
    # task attempts, speculative clones (whichever side of the race
    # lost), and re-executions of tasks stranded on a dead node. A
    # float-valued counter — simulated seconds, not an event count.
    WASTED_COMPUTE_SECONDS = "WASTED_COMPUTE_SECONDS"


class UserCounter:
    """Names of the algorithm-level counters incremented by jobs."""

    DISTANCE_COMPUTATIONS = "DISTANCE_COMPUTATIONS"
    COORDINATE_OPS = "COORDINATE_OPS"
    PROJECTIONS = "PROJECTIONS"
    AD_TESTS = "AD_TESTS"
    AD_SAMPLE_POINTS = "AD_SAMPLE_POINTS"
    CLUSTER_TESTS = "CLUSTER_TESTS"
    POINTS_PER_CLUSTER_MAX = "POINTS_PER_CLUSTER_MAX"


FRAMEWORK_GROUP = "framework"
USER_GROUP = "user"


def _new_group() -> "defaultdict[str, int]":
    """Module-level ``defaultdict`` factory: a lambda here would make
    per-task counters unpicklable, and the process-pool executor ships
    them back across process boundaries."""
    return defaultdict(int)


class Counters:
    """A two-level (group, name) -> numeric counter map.

    Supports increment, max-update (for high-water marks such as the
    biggest cluster size), merging of per-task counters into per-job
    counters, and snapshot/diff — which the cost model uses to charge
    each task only for the work it performed. Instances pickle cleanly
    (task counters travel from pool workers to the runtime).

    Values are integers except for the few counters that measure
    simulated seconds (``WASTED_COMPUTE_SECONDS``): a float ``amount``
    accumulates exactly, so replayed journal totals reconcile
    bit-for-bit against the live run's accounting.
    """

    def __init__(self) -> None:
        self._data: dict[str, dict[str, int]] = defaultdict(_new_group)

    def inc(self, group: str, name: str, amount: "int | float" = 1) -> None:
        """Add ``amount`` to counter ``(group, name)``.

        Integral amounts are coerced to ``int``; float amounts (the
        seconds-valued counters) accumulate unchanged.
        """
        self._data[group][name] += (
            amount if isinstance(amount, float) else int(amount)
        )

    def set_max(self, group: str, name: str, value: int) -> None:
        """Raise counter ``(group, name)`` to ``value`` if smaller."""
        current = self._data[group][name]
        if value > current:
            self._data[group][name] = int(value)

    def get(self, group: str, name: str) -> int:
        """Current value of counter ``(group, name)`` (0 if never set)."""
        return self._data.get(group, {}).get(name, 0)

    def merge(self, other: "Counters") -> None:
        """Fold every counter of ``other`` into this object.

        Counters whose name ends in ``_MAX`` are high-water marks and
        merge by maximum (e.g. the biggest cluster seen by any task);
        everything else merges by sum.
        """
        for group, names in other._data.items():
            for name, value in names.items():
                if name.endswith("_MAX"):
                    self.set_max(group, name, value)
                else:
                    self._data[group][name] += value

    def merge_max(self, other: "Counters", group: str, name: str) -> None:
        """Merge one counter of ``other`` by maximum instead of sum."""
        self.set_max(group, name, other.get(group, name))

    def snapshot(self) -> dict[tuple[str, str], int]:
        """Flat copy of all counters, keyed by ``(group, name)``."""
        return {
            (group, name): value
            for group, names in self._data.items()
            for name, value in names.items()
        }

    def copy(self) -> "Counters":
        """Independent deep copy (the boundary snapshot ``diff`` reads)."""
        clone = Counters()
        for group, names in self._data.items():
            clone._data[group].update(names)
        return clone

    def diff(self, before: "Counters") -> "Counters":
        """Counters accumulated since the ``before`` snapshot.

        Additive counters carry their increment; ``_MAX`` high-water
        marks carry the *new* high-water value when it rose and are
        omitted otherwise, so that ``before.merge(diff)`` always
        reconstructs the current state. Unchanged counters are omitted,
        which keeps per-span deltas in the run journal compact.
        """
        delta = Counters()
        for group, names in self._data.items():
            for name, value in names.items():
                prior = before.get(group, name)
                if name.endswith("_MAX"):
                    if value > prior:
                        delta._data[group][name] = value
                elif value != prior:
                    delta._data[group][name] = value - prior
        return delta

    @classmethod
    def from_dict(cls, data: "dict[str, dict[str, int]]") -> "Counters":
        """Rebuild a :class:`Counters` from an :meth:`as_dict` mapping."""
        counters = cls()
        for group, names in data.items():
            for name, value in names.items():
                counters._data[group][name] = (
                    value if isinstance(value, float) else int(value)
                )
        return counters

    def as_dict(self) -> dict[str, dict[str, int]]:
        """Nested plain-dict copy (for reports and JSON output)."""
        return {group: dict(names) for group, names in self._data.items()}

    def __iter__(self) -> Iterator[tuple[str, str, int]]:
        for group, names in self._data.items():
            for name, value in names.items():
                yield group, name, value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(f"{g}.{n}={v}" for g, n, v in self)
        return f"Counters({parts})"


def framework(counters: Counters, name: str, amount: int = 1) -> None:
    """Increment a framework counter (shorthand used by the runtime)."""
    counters.inc(FRAMEWORK_GROUP, name, amount)
