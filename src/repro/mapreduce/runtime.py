"""The job executor: runs one MapReduce job over a DFS file.

Semantics follow Hadoop 1.x:

* one map task per input split; ``setup`` / ``map_split`` / ``close``;
* the combiner (when configured) runs once on each map task's output;
* combined pairs are hash-partitioned over ``num_reduce_tasks`` buckets
  and sort-merged by key inside each reduce task;
* reduce-side materialisation is charged against the task JVM heap and
  fails with :class:`~repro.common.errors.JavaHeapSpaceError`, which the
  runtime wraps into :class:`~repro.common.errors.JobFailedError`
  (Hadoop kills the job after repeated task failures);
* every task runs with its own counters, which the cost model converts
  into a simulated duration before they are merged into job counters.

Task execution is delegated to a pluggable backend
(:mod:`repro.mapreduce.executors`): map and reduce tasks within a phase
are independent, so the ``threads`` and ``processes`` backends run them
concurrently, bounded by the cluster's map/reduce slots.

The runtime is deterministic *across backends*: task RNGs are spawned
from the runtime RNG by task index (never completion order), task
outputs and counters are merged in task-index order, partitioning uses
a stable hash, and fault injection runs in the submitting process over
one sequential RNG stream. Same seed, same backend-independent results
— always.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import (
    JavaHeapSpaceError,
    JobFailedError,
    SplitUnavailableError,
)
from repro.common.rng import ensure_rng, spawn_seeds
from repro.mapreduce.executors import (
    MapTaskSpec,
    ReduceTaskSpec,
    RuntimeConfig,
    TaskExecutor,
    create_executor,
    execute_map_task,
    execute_reduce_task,
    unwrap,
)
from repro.mapreduce.faults import (
    FaultModel,
    SPECULATIVE_TASKS,
    TASK_FAILURES,
    TaskPermanentlyFailedError,
)
from repro.mapreduce.cluster import ClusterConfig, MIB, PAPER_CLUSTER
from repro.mapreduce.costmodel import CostModel, CostParameters, JobTiming
from repro.mapreduce.counters import (
    Counters,
    FRAMEWORK_GROUP,
    MRCounter,
    framework,
)
from repro.mapreduce.hdfs import DFSFile, InMemoryDFS
from repro.mapreduce.job import Job
from repro.mapreduce.nodes import (
    ClusterState,
    NODE_FAIL,
    NODE_RECOVER,
    NodeFaultModel,
)
from repro.mapreduce.shuffle import group_by_key, partition_pairs
from repro.observability.journal import JOB, PHASE, Journal
from repro.observability.profiling import profiling_from_env


@dataclass
class JobResult:
    """Everything one job run produced."""

    job_name: str
    output: list[tuple[object, object]]
    counters: Counters
    timing: JobTiming
    num_map_tasks: int
    num_reduce_tasks: int
    max_reduce_heap_bytes: int = 0
    map_task_seconds: list[float] = field(default_factory=list)
    reduce_task_seconds: list[float] = field(default_factory=list)
    #: Fault-recovery time on top of the phase timing: retry backoff
    #: waited between job attempts plus DFS replica re-reads/re-writes.
    overhead_seconds: float = 0.0
    #: Whole-job re-executions this result survived.
    job_retries: int = 0

    def output_dict(self) -> dict:
        """Output pairs grouped as ``key -> [values]``."""
        return dict(group_by_key(self.output))

    @property
    def simulated_seconds(self) -> float:
        return self.timing.total_seconds + self.overhead_seconds


class MapReduceRuntime:
    """Executes jobs on a simulated cluster over an in-memory DFS.

    ``config`` selects the task-execution backend (a
    :class:`~repro.mapreduce.executors.RuntimeConfig`, or just the
    backend name as a string); without one, the ``REPRO_EXECUTOR`` /
    ``REPRO_NUM_WORKERS`` environment variables are consulted, so whole
    test suites can be re-run over another backend unchanged. An
    explicit ``executor`` instance overrides both.
    """

    def __init__(
        self,
        dfs: InMemoryDFS,
        cluster: ClusterConfig = PAPER_CLUSTER,
        cost: CostParameters | None = None,
        rng=None,
        faults: FaultModel | None = None,
        locality: bool = False,
        config: "RuntimeConfig | str | None" = None,
        executor: "TaskExecutor | None" = None,
        journal: "Journal | None" = None,
        profile_tasks: "bool | None" = None,
        node_faults: "NodeFaultModel | None" = None,
        cluster_state: "ClusterState | None" = None,
    ):
        self.dfs = dfs
        self.cluster = cluster
        self.locality = locality
        # Observability is opt-in: without an explicit journal the
        # REPRO_JOURNAL environment variable is consulted, and absent
        # both every instrumentation point is one disabled-check away
        # from free. The journal never touches an RNG stream.
        self.journal = journal if journal is not None else Journal.from_env()
        self.cost_model = CostModel(cost or CostParameters(), cluster)
        self._rng = ensure_rng(rng)
        # Faults draw from their own stream so enabling them perturbs
        # task *durations* without changing any algorithmic result. The
        # stream is consumed in the submitting process, in task-index
        # order, which keeps fault draws identical across backends.
        # Without explicit faults, the environment is consulted (the
        # chaos-mode switch; None when no fault variables are set).
        self.faults = faults if faults is not None else FaultModel.from_env()
        self._fault_rng = np.random.default_rng(
            int(self._rng.integers(2**63 - 1))
        )
        # Node-level failure domains: a live ClusterState always exists
        # (with every node alive it reports exactly the config's
        # capacity), but node-fault draws, DFS replica topology and
        # blacklisting only activate when a NodeFaultModel is present —
        # explicitly or through the REPRO_NODE_* environment. The node
        # stream is seeded from the model (like BlockFaultModel), never
        # from the runtime RNG: enabling node faults must not shift a
        # single task seed.
        self.node_faults = (
            node_faults if node_faults is not None else NodeFaultModel.from_env()
        )
        self.cluster_state = cluster_state or ClusterState(
            cluster,
            blacklist_threshold=(
                self.node_faults.blacklist_threshold
                if self.node_faults is not None
                else None
            ),
        )
        self._node_rng = np.random.default_rng(
            self.node_faults.seed if self.node_faults is not None else 0
        )
        if self.node_faults is not None or cluster_state is not None:
            self.dfs.attach_topology(self.cluster_state)
        if isinstance(config, str):
            config = RuntimeConfig(executor=config)
        self.config = config or RuntimeConfig.from_env()
        self.executor = executor or create_executor(self.config)
        # Per-task profiling (--profile-tasks): stamps real CPU seconds
        # onto every journal task record, plus a tracemalloc peak
        # sampled on the first task of each phase of geometrically
        # sampled jobs (tracing every body would dwarf the workload).
        # Measurements only — results are
        # byte-identical with profiling on or off.
        self.profile_tasks = (
            profiling_from_env() if profile_tasks is None else bool(profile_tasks)
        )
        self.jobs_run = 0

    # -- public ----------------------------------------------------------

    def close(self) -> None:
        """Release executor resources held by this runtime."""
        self.executor.close()

    def __enter__(self) -> "MapReduceRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # RNG state accessors used by checkpointing drivers: restoring both
    # streams mid-chain makes a resumed run consume exactly the task
    # seeds and fault draws an uninterrupted run would have.

    @property
    def rng_state(self) -> dict:
        """Serialisable state of the task-seed RNG stream."""
        return self._rng.bit_generator.state

    @rng_state.setter
    def rng_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state

    @property
    def fault_rng_state(self) -> dict:
        """Serialisable state of the fault-injection RNG stream."""
        return self._fault_rng.bit_generator.state

    @fault_rng_state.setter
    def fault_rng_state(self, state: dict) -> None:
        self._fault_rng.bit_generator.state = state

    @property
    def node_rng_state(self) -> dict:
        """Serialisable state of the node-fault RNG stream."""
        return self._node_rng.bit_generator.state

    @node_rng_state.setter
    def node_rng_state(self, state: dict) -> None:
        self._node_rng.bit_generator.state = state

    def run(
        self, job: Job, input_file: "DFSFile | str", cached: bool = False
    ) -> JobResult:
        """Run ``job`` over ``input_file`` and return its result.

        ``cached=True`` models a Spark-style in-memory dataset (the
        optimisation the paper's future-work section targets): the read
        is counted as a cached read and costs no disk time.

        A job that fails permanently (a task out of attempts, a split
        with no surviving replica) is re-executed up to the config's
        ``max_job_retries`` times with exponential backoff, the way a
        driver resubmits a failed Hadoop job. The retry restores the
        task-seed RNG to the failed attempt's state — re-executed tasks
        are deterministic, so retries change time, never results — while
        the fault stream keeps advancing, so the retry can succeed.
        """
        max_retries = self.config.max_job_retries
        journal = self.journal
        backoff = 0.0
        retries = 0
        while True:
            seed_state = self._rng.bit_generator.state
            failure: "JobFailedError | None" = None
            # Each attempt gets its own job span, closed before the
            # retry decision so failed attempts are first-class records.
            with journal.span(
                JOB,
                job.name,
                attempt=retries + 1,
                combiner_optional=job.combiner_optional,
            ) as span:
                try:
                    result = self._run_attempt(job, input_file, cached)
                except JobFailedError as err:
                    failure = err
                    span.set(
                        status="failed",
                        error=type(err.cause).__name__
                        if err.cause is not None
                        else type(err).__name__,
                    )
                else:
                    if retries:
                        framework(result.counters, MRCounter.JOB_RETRIES, retries)
                        result.job_retries = retries
                        result.overhead_seconds += backoff
                    if journal.enabled:
                        timing = result.timing
                        span.set(
                            status="ok",
                            retries=retries,
                            simulated_seconds=result.simulated_seconds,
                            overhead_seconds=result.overhead_seconds,
                            num_map_tasks=result.num_map_tasks,
                            num_reduce_tasks=result.num_reduce_tasks,
                            max_reduce_heap_bytes=result.max_reduce_heap_bytes,
                            heap_bytes=self.cluster.task_heap_bytes,
                            # The *live* node count: the analyzer's
                            # shuffle residual divides by the fabric the
                            # job actually ran over, which shrinks with
                            # node loss.
                            nodes=len(self.cluster_state.schedulable_node_ids),
                            timing={
                                "startup_seconds": timing.startup_seconds,
                                "map_seconds": timing.map_seconds,
                                "shuffle_seconds": timing.shuffle_seconds,
                                "reduce_seconds": timing.reduce_seconds,
                            },
                            counters=result.counters.as_dict(),
                        )
            if failure is None:
                return result
            # Heap exhaustion is deterministic (same input, same heap,
            # same overflow — Figure 2's failure): resubmitting cannot
            # help, so it escapes the retry loop untouched.
            if isinstance(failure.cause, JavaHeapSpaceError):
                raise failure
            if retries >= max_retries:
                raise failure
            retries += 1
            self._rng.bit_generator.state = seed_state
            delay = self._retry_backoff_seconds(retries)
            backoff += delay
            journal.event(
                "job_retry", job=job.name, retry=retries, backoff_seconds=delay
            )

    def _retry_backoff_seconds(self, retry: int) -> float:
        """Exponential backoff before re-execution ``retry`` (1-based),
        with deterministic jitter drawn from the serial fault stream."""
        cfg = self.config
        delay = cfg.retry_backoff_seconds * cfg.retry_backoff_factor ** (retry - 1)
        if cfg.retry_jitter:
            delay *= 1.0 + cfg.retry_jitter * float(self._fault_rng.random())
        return delay

    def _capacity_attrs(self) -> dict:
        """Live-capacity attributes stamped on node lifecycle events."""
        state = self.cluster_state
        return {
            "schedulable_nodes": len(state.schedulable_node_ids),
            "total_map_slots": state.total_map_slots,
            "total_reduce_slots": state.total_reduce_slots,
        }

    def _apply_node_faults(
        self, counters: Counters
    ) -> "tuple[float, frozenset, tuple]":
        """One node-fault round: draw, apply, journal the cascades.

        Runs at the start of every job attempt, in the submitting
        process, before the input read — the JobTracker notices dead
        TaskTrackers between jobs and at heartbeat boundaries. Returns
        ``(overhead_seconds, lost_node_ids, pre_loss_schedulable)``:
        the heartbeat-detection and re-replication time to charge, the
        nodes that died this round, and the schedulable set the dead
        nodes were still part of (the map phase uses it to find which
        tasks were stranded and must re-execute on survivors).
        """
        model = self.node_faults
        state = self.cluster_state
        if model is None or not model.enabled:
            return 0.0, frozenset(), ()
        pre_nodes = tuple(state.schedulable_node_ids)
        events = model.draw(state, self._node_rng)
        if not events:
            return 0.0, frozenset(), pre_nodes
        journal = self.journal
        params = self.cost_model.params
        overhead = 0.0
        lost: list[int] = []
        for kind, node_id in events:
            if kind == NODE_RECOVER:
                node = state.recover(node_id)
                journal.event(
                    "node_recovered",
                    node=node_id,
                    recoveries=node.recoveries,
                    **self._capacity_attrs(),
                )
                continue
            assert kind == NODE_FAIL
            node = state.fail(node_id)
            lost.append(node_id)
            # Death is detected one heartbeat timeout after the fact;
            # the namenode then re-replicates everything the node held
            # in one correlated batch.
            overhead += model.heartbeat_timeout_seconds
            report = self.dfs.fail_node(node_id)
            journal.event(
                "node_lost",
                node=node_id,
                deaths=node.deaths,
                heartbeat_timeout_seconds=model.heartbeat_timeout_seconds,
                blocks_lost=report.blocks_lost,
                **self._capacity_attrs(),
            )
            if report.blocks_lost:
                framework(counters, MRCounter.BLOCKS_LOST, report.blocks_lost)
                journal.event(
                    "blocks_lost",
                    node=node_id,
                    count=report.blocks_lost,
                    bytes=report.bytes_lost,
                    correlated=True,
                    splits_unreadable=report.splits_unreadable,
                )
            if report.bytes_re_replicated:
                framework(
                    counters,
                    MRCounter.HDFS_BYTES_WRITTEN,
                    report.bytes_re_replicated,
                )
                journal.event(
                    "re_replication",
                    node=node_id,
                    copies=report.re_replications,
                    bytes=report.bytes_re_replicated,
                )
                overhead += report.bytes_re_replicated / (
                    params.disk_write_mbps * MIB
                )
        return overhead, frozenset(lost), pre_nodes

    def _apply_blacklist(self, failures_by_node: "dict[int, int]") -> None:
        """Feed per-node task-failure attributions to the blacklist.

        A node crossing the threshold stops receiving tasks from the
        next phase on (it keeps serving DFS replicas — blacklisting is
        a scheduling decision, not a failure domain).
        """
        state = self.cluster_state
        if state.blacklist_threshold is None:
            return
        for node_id in sorted(failures_by_node):
            if state.record_task_failures(node_id, failures_by_node[node_id]):
                node = state.node_states[node_id]
                self.journal.event(
                    "node_blacklisted",
                    node=node_id,
                    task_failures=node.task_failures,
                    threshold=state.blacklist_threshold,
                    **self._capacity_attrs(),
                )

    def _run_attempt(
        self, job: Job, input_file: "DFSFile | str", cached: bool
    ) -> JobResult:
        """One execution attempt of ``job`` (the pre-retry ``run``)."""
        f = self.dfs.open(input_file) if isinstance(input_file, str) else input_file
        self.jobs_run += 1
        counters = Counters()
        node_overhead, lost_nodes, pre_nodes = self._apply_node_faults(counters)
        recovery_seconds = node_overhead
        try:
            if cached:
                framework(counters, MRCounter.CACHED_READS)
            else:
                framework(counters, MRCounter.DATASET_READS)
                framework(counters, MRCounter.HDFS_BYTES_READ, f.size_bytes)
                recovery_seconds += self._charge_input_read(f, counters)
            pairs, map_seconds, shuffle_bytes = self._run_map_phase(
                job, f, counters, cached, lost_nodes, pre_nodes
            )
            map_makespan = self._locality_map_makespan(
                f, map_seconds, counters, cached
            )
            state = self.cluster_state
            live_nodes = len(state.schedulable_node_ids)
            if job.reducer is None:
                timing = self.cost_model.job_timing(
                    map_seconds,
                    [],
                    0,
                    map_makespan_override=map_makespan,
                    map_slots=state.total_map_slots,
                    nodes=live_nodes,
                )
                return JobResult(
                    job_name=job.name,
                    output=pairs,
                    counters=counters,
                    timing=timing,
                    num_map_tasks=f.num_splits,
                    num_reduce_tasks=0,
                    map_task_seconds=map_seconds,
                    overhead_seconds=recovery_seconds,
                )
            output, reduce_seconds, max_heap, num_reduce = self._run_reduce_phase(
                job, pairs, counters
            )
        except (
            JavaHeapSpaceError,
            TaskPermanentlyFailedError,
            SplitUnavailableError,
        ) as err:
            raise JobFailedError(
                f"job {job.name!r} failed: {err}", cause=err
            ) from err

        framework(counters, MRCounter.SHUFFLE_BYTES, shuffle_bytes)
        timing = self.cost_model.job_timing(
            map_seconds,
            reduce_seconds,
            shuffle_bytes,
            map_makespan_override=map_makespan,
            map_slots=state.total_map_slots,
            reduce_slots=state.total_reduce_slots,
            nodes=live_nodes,
        )
        return JobResult(
            job_name=job.name,
            output=output,
            counters=counters,
            timing=timing,
            num_map_tasks=f.num_splits,
            num_reduce_tasks=num_reduce,
            max_reduce_heap_bytes=max_heap,
            map_task_seconds=map_seconds,
            reduce_task_seconds=reduce_seconds,
            overhead_seconds=recovery_seconds,
        )

    def _charge_input_read(self, f: DFSFile, counters: Counters) -> float:
        """Charge the input scan against the DFS, with replica failover.

        Returns the extra simulated seconds spent re-reading dead copies
        and re-replicating degraded splits; mirrors the failover work
        into the job's ``REPLICA_READS`` / ``BLOCKS_LOST`` counters.
        """
        report = self.dfs.charge_read(f)
        journal = self.journal
        if report.replica_failovers:
            framework(counters, MRCounter.REPLICA_READS, report.replica_failovers)
            framework(counters, MRCounter.HDFS_BYTES_READ, report.extra_bytes_read)
            journal.event(
                "replica_failover",
                file=f.name,
                failovers=report.replica_failovers,
                extra_bytes_read=report.extra_bytes_read,
            )
        if report.replicas_lost:
            framework(counters, MRCounter.BLOCKS_LOST, report.replicas_lost)
            journal.event("blocks_lost", file=f.name, count=report.replicas_lost)
        if report.bytes_re_replicated:
            framework(
                counters, MRCounter.HDFS_BYTES_WRITTEN, report.bytes_re_replicated
            )
            journal.event(
                "re_replication", file=f.name, bytes=report.bytes_re_replicated
            )
        params = self.cost_model.params
        return report.extra_bytes_read / (params.disk_read_mbps * MIB) + (
            report.bytes_re_replicated / (params.disk_write_mbps * MIB)
        )

    @staticmethod
    def _shuffle_skew_attrs(job: Job, buckets: list) -> dict:
        """Per-reducer shuffle-skew fields for the reduce phase span.

        Records, distinct keys and shuffle bytes per reduce bucket
        (byte accounting matches the map side: 8 bytes of key framing
        plus the job's ``value_size``), and the per-key high-water marks
        the heap-model audit compares against ``estimate_reducer_heap_bytes``
        — only computed when a journal is listening.
        """
        bucket_records: list[int] = []
        bucket_keys: list[int] = []
        bucket_bytes: list[int] = []
        key_records: dict = {}
        key_heap: dict = {}
        heap_cost = job.heap_bytes_per_value
        for bucket in buckets:
            nbytes = 0
            keys = set()
            for key, value in bucket:
                nbytes += 8 + job.value_size(value)
                keys.add(key)
                key_records[key] = key_records.get(key, 0) + 1
                if heap_cost is not None:
                    key_heap[key] = key_heap.get(key, 0) + int(heap_cost(value))
            bucket_records.append(len(bucket))
            bucket_keys.append(len(keys))
            bucket_bytes.append(nbytes)
        attrs = {
            "bucket_records": bucket_records,
            "bucket_keys": bucket_keys,
            "bucket_bytes": bucket_bytes,
            "distinct_keys": len(key_records),
            "max_key_records": max(key_records.values(), default=0),
        }
        if heap_cost is not None:
            attrs["max_key_heap_bytes"] = max(key_heap.values(), default=0)
        return attrs

    def _sample_memory(self) -> bool:
        """Memory-trace this job's first-of-phase tasks?

        Geometric over the job sequence (jobs 1, 2, 4, 8, ...): tracing
        a sampled task body means tracemalloc hooks on every allocation
        its pure-Python pair loops make, so a chained run keeps a
        log-bounded number of samples — still spread across early, mid
        and late k for the Figure-2 memory audit — instead of paying
        per job.
        """
        n = self.jobs_run
        return self.profile_tasks and n > 0 and (n & (n - 1)) == 0

    def _journal_task(self, task_id: str, index: int, seconds, task) -> None:
        """Record one finished task (plus its fault activity) under the
        current phase span. Task counters are per-task fresh, so their
        fault values *are* the per-task deltas."""
        journal = self.journal
        if not journal.enabled:
            return
        if self.profile_tasks:
            journal.task(
                task_id,
                index,
                float(seconds),
                task.wall_seconds,
                cpu_seconds=task.cpu_seconds,
                peak_memory_bytes=task.peak_memory_bytes,
            )
        else:
            journal.task(task_id, index, float(seconds), task.wall_seconds)
        failures = task.counters.get(FRAMEWORK_GROUP, TASK_FAILURES)
        if failures:
            journal.event(
                "task_attempt_failures", task_id=task_id, failures=failures
            )
        if task.counters.get(FRAMEWORK_GROUP, SPECULATIVE_TASKS):
            journal.event("speculative_task", task_id=task_id)

    def _phase_progress(self, phase: str, total: int):
        """Live per-task progress callback for a phase, or ``None``.

        Task *records* are journalled only after the phase's executor
        call returns, so live progress rides the executor's ``on_result``
        ticks instead — forwarded to the telemetry sink when one is
        listening (``task_progress`` is the :class:`TelemetrySink`
        extension; plain sinks don't have it).
        """
        if not self.journal.enabled:
            return None
        tick = getattr(self.journal.sink, "task_progress", None)
        if tick is None:
            return None

        def on_result(done: int) -> None:
            tick(phase, done, total)

        return on_result

    # -- phases ----------------------------------------------------------

    def _locality_map_makespan(
        self,
        f: DFSFile,
        map_seconds: list[float],
        counters: Counters,
        cached: bool,
    ) -> "float | None":
        """Locality-aware map makespan (None when locality is off).

        A cached dataset lives in memory everywhere, so every task is
        data-local and no fetch penalty applies.

        Under node failure, tasks are scheduled onto the surviving
        schedulable nodes only, and replica locations come from the
        DFS's live placement (which excludes dead nodes and reflects
        re-replication) instead of the static hash formula.
        """
        if not self.locality:
            return None
        from repro.mapreduce.locality import (
            DATA_LOCAL_TASKS,
            MapTaskSpec,
            REMOTE_TASKS,
            fetch_seconds,
            replica_nodes,
            schedule_map_tasks,
        )

        survivors = tuple(self.cluster_state.schedulable_node_ids)
        live_topology = self.dfs.topology_attached
        specs = []
        for split, seconds in zip(f.splits, map_seconds):
            if cached:
                replicas = survivors
                fetch = 0.0
            else:
                if live_topology:
                    replicas = self.dfs.replica_placement(
                        split.file_name, split.index
                    )
                else:
                    replicas = replica_nodes(
                        split, self.cluster.nodes, f.replication
                    )
                fetch = fetch_seconds(
                    split.size_bytes, self.cost_model.params.network_mbps_per_node
                )
            specs.append(
                MapTaskSpec(seconds=seconds, fetch_seconds=fetch, replicas=replicas)
            )
        schedule = schedule_map_tasks(specs, self.cluster, node_ids=survivors)
        framework(counters, DATA_LOCAL_TASKS, schedule.data_local_tasks)
        framework(counters, REMOTE_TASKS, schedule.remote_tasks)
        return schedule.makespan

    def _run_map_phase(
        self,
        job: Job,
        f: DFSFile,
        counters: Counters,
        cached: bool,
        lost_nodes: frozenset = frozenset(),
        pre_nodes: tuple = (),
    ) -> tuple[list, list[float], int]:
        """Run all map tasks; returns (shuffle pairs, task times, bytes).

        ``lost_nodes`` are the nodes that died this attempt; any task
        whose round-robin placement over ``pre_nodes`` (the schedulable
        set the dead nodes were still in) landed on one is re-executed
        on a survivor — it burns half its duration stranded (charged to
        ``WASTED_COMPUTE_SECONDS``) and then runs again in full.
        """
        heap = self.cluster.task_heap_bytes
        seeds = spawn_seeds(self._rng, f.num_splits)
        sample_memory = self._sample_memory()
        specs = [
            MapTaskSpec(
                task_id=f"{job.name}-m-{split.index:05d}",
                mapper=job.mapper,
                combiner=job.combiner,
                config=job.config,
                split=split,
                seed=seed,
                heap_bytes=heap,
                profile=self.profile_tasks,
                profile_memory=sample_memory and split.index == 0,
            )
            for split, seed in zip(f.splits, seeds)
        ]
        all_pairs: list[tuple[object, object]] = []
        map_seconds: list[float] = []
        shuffle_bytes = 0
        assigned = tuple(self.cluster_state.schedulable_node_ids)
        failures_by_node: dict[int, int] = {}
        rescheduled = 0
        with self.journal.span(
            PHASE,
            "map",
            tasks=f.num_splits,
            slots=self.cluster_state.total_map_slots,
        ) as phase_span:
            outcomes = self.executor.run_tasks(
                execute_map_task,
                specs,
                max_concurrency=self.cluster_state.executor_concurrency("map"),
                on_result=self._phase_progress("map", f.num_splits),
            )
            for spec, split, outcome in zip(specs, f.splits, outcomes):
                task = unwrap(outcome)
                for key, value in task.pairs:
                    shuffle_bytes += 8 + job.value_size(value)
                all_pairs.extend(task.pairs)
                seconds = self.cost_model.map_task_seconds(
                    task.counters, split.size_bytes, cached
                )
                if self.faults is not None:
                    seconds = self.faults.apply(
                        seconds, spec.task_id, self._fault_rng, task.counters
                    )
                if (
                    lost_nodes
                    and pre_nodes
                    and pre_nodes[split.index % len(pre_nodes)] in lost_nodes
                ):
                    # The task was stranded on a node that died mid-run:
                    # it burned half its duration before the heartbeat
                    # layer noticed, then re-ran in full on a survivor.
                    task.counters.inc(
                        FRAMEWORK_GROUP,
                        MRCounter.WASTED_COMPUTE_SECONDS,
                        seconds * 0.5,
                    )
                    seconds *= 1.5
                    rescheduled += 1
                map_seconds.append(seconds)
                self._journal_task(spec.task_id, split.index, seconds, task)
                counters.merge(task.counters)
                if assigned:
                    node = assigned[split.index % len(assigned)]
                    fails = task.counters.get(FRAMEWORK_GROUP, TASK_FAILURES)
                    if fails:
                        failures_by_node[node] = (
                            failures_by_node.get(node, 0) + fails
                        )
            if rescheduled:
                self.journal.event(
                    "tasks_rescheduled",
                    count=rescheduled,
                    nodes=sorted(lost_nodes),
                )
            if self.journal.enabled:
                # Map-output volume on the phase-end record: the online
                # heap-breach detector projects the reducer's per-key
                # heap from this growth *before* the reduce phase runs.
                phase_span.set(
                    map_output_records=len(all_pairs),
                    shuffle_bytes=shuffle_bytes,
                )
        self._apply_blacklist(failures_by_node)
        return all_pairs, map_seconds, shuffle_bytes

    def _run_reduce_phase(
        self, job: Job, pairs: list, counters: Counters
    ) -> tuple[list, list[float], int, int]:
        """Run all reduce tasks; returns (output, times, max heap, R)."""
        # Deliberately the *configured* capacity, not the live one: the
        # reduce-task count pins partitioning and per-task RNG
        # consumption, so results stay a function of the seed alone.
        # Node loss degrades scheduling (slots, makespan), never the
        # partition layout.
        num_reduce = job.num_reduce_tasks or self.cluster.total_reduce_slots
        heap = self.cluster.task_heap_bytes
        buckets = partition_pairs(pairs, num_reduce, job.partitioner)
        seeds = spawn_seeds(self._rng, num_reduce)
        sample_memory = self._sample_memory()
        specs = [
            ReduceTaskSpec(
                task_id=f"{job.name}-r-{index:05d}",
                reducer=job.reducer,
                config=job.config,
                bucket=bucket,
                seed=seed,
                heap_bytes=heap,
                heap_bytes_per_value=job.heap_bytes_per_value,
                profile=self.profile_tasks,
                profile_memory=sample_memory and index == 0,
            )
            for index, (bucket, seed) in enumerate(zip(buckets, seeds))
        ]
        output: list[tuple[object, object]] = []
        reduce_seconds: list[float] = []
        max_heap_seen = 0
        assigned = tuple(self.cluster_state.schedulable_node_ids)
        failures_by_node: dict[int, int] = {}
        with self.journal.span(
            PHASE,
            "reduce",
            tasks=num_reduce,
            slots=self.cluster_state.total_reduce_slots,
        ) as phase_span:
            if self.journal.enabled:
                phase_span.set(**self._shuffle_skew_attrs(job, buckets))
            outcomes = self.executor.run_tasks(
                execute_reduce_task,
                specs,
                max_concurrency=self.cluster_state.executor_concurrency(
                    "reduce"
                ),
                on_result=self._phase_progress("reduce", num_reduce),
            )
            for index, (spec, outcome) in enumerate(zip(specs, outcomes)):
                task = unwrap(outcome)
                output.extend(task.pairs)
                max_heap_seen = max(max_heap_seen, task.heap_high_water)
                seconds = self.cost_model.reduce_task_seconds(task.counters)
                if self.faults is not None:
                    seconds = self.faults.apply(
                        seconds, spec.task_id, self._fault_rng, task.counters
                    )
                reduce_seconds.append(seconds)
                self._journal_task(spec.task_id, index, seconds, task)
                counters.merge(task.counters)
                if assigned:
                    node = assigned[index % len(assigned)]
                    fails = task.counters.get(FRAMEWORK_GROUP, TASK_FAILURES)
                    if fails:
                        failures_by_node[node] = (
                            failures_by_node.get(node, 0) + fails
                        )
        self._apply_blacklist(failures_by_node)
        return output, reduce_seconds, max_heap_seen, num_reduce
