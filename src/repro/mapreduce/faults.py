"""Task-level fault injection: failures, retries, stragglers,
speculative execution.

Hadoop's fault tolerance shapes real job times: a task that dies is
re-executed (up to ``mapred.map.max.attempts`` = 4 by default, after
which the whole job fails), and slow tasks ("stragglers") are raced
against speculative clones. The simulation reproduces those dynamics
so that chained G-means runs exhibit realistic tail behaviour — and so
the test suite can verify the algorithms are agnostic to them (faults
perturb *time*, never *results*, because re-executed tasks are
deterministic).

Concurrency contract: the fault stream is a single sequential RNG, so
the runtime applies the model in the *submitting* process only, in
task-index order, after the parallel task executor has returned —
never inside worker threads or processes. That keeps retry and
speculative-execution bookkeeping thread-safe and byte-identical
across the serial, thread and process backends.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.common.errors import ConfigurationError, ReproError
from repro.common.validation import check_in_range, check_positive
from repro.mapreduce.counters import Counters, FRAMEWORK_GROUP, MRCounter

#: Environment variables consulted by :meth:`FaultModel.from_env` (the
#: chaos-mode switch: every runtime constructed without explicit faults
#: picks these up, so a whole test suite can run under injected faults).
TASK_FAILURE_PROB_ENV = "REPRO_TASK_FAILURE_PROB"
STRAGGLER_PROB_ENV = "REPRO_STRAGGLER_PROB"
MAX_TASK_ATTEMPTS_ENV = "REPRO_MAX_TASK_ATTEMPTS"


class TaskPermanentlyFailedError(ReproError):
    """A task failed on every allowed attempt (Hadoop then kills the job)."""

    def __init__(self, task: str, attempts: int):
        self.task = task
        self.attempts = attempts
        super().__init__(f"task {task} failed after {attempts} attempts")

    def __reduce__(self):
        return (type(self), (self.task, self.attempts))


#: Framework counters maintained by the fault model.
TASK_FAILURES = "TASK_FAILURES"
SPECULATIVE_TASKS = "SPECULATIVE_TASKS"


@dataclass(frozen=True)
class FaultModel:
    """Stochastic task-level fault behaviour.

    ``task_failure_probability`` applies independently per attempt; a
    failed attempt burns half its duration before dying (the task died
    mid-flight). ``straggler_probability`` slows a task by
    ``straggler_slowdown``; with ``speculative_execution`` a clone is
    launched and the effective duration becomes the clone's (plus a
    detection overhead), as in Hadoop's speculative execution.
    """

    task_failure_probability: float = 0.0
    max_attempts: int = 4
    straggler_probability: float = 0.0
    straggler_slowdown: float = 6.0
    speculative_execution: bool = False
    speculative_overhead: float = 1.2

    def __post_init__(self) -> None:
        check_in_range(
            "task_failure_probability", self.task_failure_probability, 0.0, 1.0
        )
        check_positive("max_attempts", self.max_attempts)
        check_in_range(
            "straggler_probability", self.straggler_probability, 0.0, 1.0
        )
        check_positive("straggler_slowdown", self.straggler_slowdown)
        check_positive("speculative_overhead", self.speculative_overhead)

    @property
    def enabled(self) -> bool:
        return (
            self.task_failure_probability > 0.0
            or self.straggler_probability > 0.0
        )

    @classmethod
    def from_env(
        cls, environ: "Mapping[str, str] | None" = None
    ) -> "FaultModel | None":
        """Build a model from ``REPRO_TASK_FAILURE_PROB`` /
        ``REPRO_STRAGGLER_PROB`` / ``REPRO_MAX_TASK_ATTEMPTS``.

        Returns ``None`` when no fault variable is set (or both
        probabilities are zero), so runtimes keep their historical
        fault-free default outside chaos runs.
        """
        env = os.environ if environ is None else environ

        def _float(name: str) -> float:
            raw = (env.get(name) or "").strip()
            if not raw:
                return 0.0
            try:
                return float(raw)
            except ValueError:
                raise ConfigurationError(
                    f"{name} must be a float, got {raw!r}"
                ) from None

        failure = _float(TASK_FAILURE_PROB_ENV)
        straggler = _float(STRAGGLER_PROB_ENV)
        raw_attempts = (env.get(MAX_TASK_ATTEMPTS_ENV) or "").strip()
        if failure == 0.0 and straggler == 0.0:
            if raw_attempts:
                warnings.warn(
                    f"{MAX_TASK_ATTEMPTS_ENV}={raw_attempts} is set but has"
                    f" no effect: neither {TASK_FAILURE_PROB_ENV} nor"
                    f" {STRAGGLER_PROB_ENV} enables fault injection",
                    stacklevel=2,
                )
            return None
        return cls(
            task_failure_probability=failure,
            straggler_probability=straggler,
            max_attempts=int(raw_attempts) if raw_attempts else 4,
        )

    def apply(
        self,
        base_seconds: float,
        task_id: str,
        rng: np.random.Generator,
        counters: Counters,
    ) -> float:
        """Effective duration of one task under the fault model.

        Alongside the duration, the model charges
        ``WASTED_COMPUTE_SECONDS`` for every machine-second that
        produced no output: a failed attempt burns the half duration it
        ran before dying; a speculative clone racing an attempt that
        dies anyway burns the same half alongside it; and when the
        clone *wins* the race, the slow original it ran beside is
        killed after ``duration`` fruitless seconds. Wasted seconds are
        pure accounting — the returned duration is unchanged by them.

        Raises :class:`TaskPermanentlyFailedError` when every attempt
        fails.
        """
        if not self.enabled:
            return base_seconds
        total = 0.0
        for attempt in range(1, self.max_attempts + 1):
            duration = base_seconds
            speculated = False
            if rng.random() < self.straggler_probability:
                slowed = base_seconds * self.straggler_slowdown
                if self.speculative_execution:
                    duration = min(
                        slowed, base_seconds * self.speculative_overhead
                    )
                    speculated = True
                else:
                    duration = slowed
            if rng.random() >= self.task_failure_probability:
                # Speculation only counts when the raced attempt is the
                # one that survives; the clone of an attempt that dies
                # anyway rescued nothing.
                if speculated:
                    counters.inc(FRAMEWORK_GROUP, SPECULATIVE_TASKS)
                    # The slow original ran beside the winning clone
                    # for the clone's whole duration before being
                    # killed.
                    counters.inc(
                        FRAMEWORK_GROUP,
                        MRCounter.WASTED_COMPUTE_SECONDS,
                        duration,
                    )
                return total + duration
            counters.inc(FRAMEWORK_GROUP, TASK_FAILURES)
            # The attempt died mid-flight; a clone racing it dies with
            # it, having burned the same half duration in parallel.
            wasted = duration * 0.5
            if speculated:
                wasted += duration * 0.5
            counters.inc(
                FRAMEWORK_GROUP, MRCounter.WASTED_COMPUTE_SECONDS, wasted
            )
            total += duration * 0.5  # the attempt died mid-flight
        raise TaskPermanentlyFailedError(task_id, self.max_attempts)
