"""Data-locality-aware map scheduling.

HDFS places each block's replicas on a handful of nodes and Hadoop's
scheduler tries to run every map task on a node holding one of them;
a "rack-remote" task must pull its split over the network first. The
paper's node-scaling experiment (Table 4) implicitly benefits from
locality — more nodes means more replica slots — so the simulation
offers the same mechanic:

* replica placement is deterministic per split (hash-seeded, HDFS-style
  consecutive nodes);
* the scheduler assigns tasks to node slots greedily (longest task
  first, earliest completion wins, data-local placements preferred on
  ties) and charges non-local tasks a network fetch of the split.

Locality is opt-in (``MapReduceRuntime(..., locality=True)``); the
default scheduler remains the plain LPT makespan over anonymous slots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.validation import check_positive
from repro.mapreduce.cluster import MIB, ClusterConfig
from repro.mapreduce.hdfs import Split
from repro.mapreduce.types import stable_hash

#: Framework counters for scheduling outcomes.
DATA_LOCAL_TASKS = "DATA_LOCAL_TASKS"
REMOTE_TASKS = "REMOTE_TASKS"


def replica_nodes(split: Split, nodes: int, replication: int = 3) -> tuple[int, ...]:
    """Deterministic replica placement of a split over ``nodes``.

    HDFS-style: a hash-chosen first node plus the next ``replication-1``
    nodes (wrapping), capped at the cluster size.
    """
    check_positive("nodes", nodes)
    first = stable_hash((split.file_name, split.index)) % nodes
    count = min(max(1, replication), nodes)
    return tuple((first + i) % nodes for i in range(count))


@dataclass(frozen=True)
class MapTaskSpec:
    """One map task as the locality scheduler sees it."""

    seconds: float  # duration when running data-local
    fetch_seconds: float  # extra network time when non-local
    replicas: tuple[int, ...]


@dataclass(frozen=True)
class LocalitySchedule:
    """Outcome of scheduling one job's map phase."""

    makespan: float
    data_local_tasks: int
    remote_tasks: int

    @property
    def locality_fraction(self) -> float:
        total = self.data_local_tasks + self.remote_tasks
        return self.data_local_tasks / total if total else 1.0


def schedule_map_tasks(
    tasks: "list[MapTaskSpec]",
    cluster: ClusterConfig,
    node_ids: "tuple[int, ...] | None" = None,
) -> LocalitySchedule:
    """Greedy locality-aware scheduling onto per-node slots.

    Tasks are placed longest-first; each picks the slot giving the
    earliest completion, with data-local options winning ties (this is
    the delay-scheduling intuition: a local slot that is only slightly
    busier still wins).

    ``node_ids`` restricts scheduling to the nodes that are actually
    schedulable (the survivors, under node failure); the default is
    every configured node. A task whose replicas all live on missing
    nodes simply runs remote.
    """
    slots_per_node = cluster.map_slots_per_node
    candidates = (
        tuple(range(cluster.nodes)) if node_ids is None else tuple(node_ids)
    )
    if not candidates:
        raise ValueError("schedule_map_tasks needs at least one node")
    loads = {node: [0.0] * slots_per_node for node in candidates}
    local = 0
    remote = 0
    for task in sorted(tasks, key=lambda t: -t.seconds):
        best = None  # (completion, not is_local, node, slot)
        for node in candidates:
            slot = min(range(slots_per_node), key=loads[node].__getitem__)
            is_local = node in task.replicas
            duration = task.seconds + (0.0 if is_local else task.fetch_seconds)
            completion = loads[node][slot] + duration
            key = (completion, not is_local)
            if best is None or key < best[0:2]:
                best = (completion, not is_local, node, slot)
        _, nonlocal_flag, node, slot = best
        is_local = not nonlocal_flag
        duration = task.seconds + (0.0 if is_local else task.fetch_seconds)
        loads[node][slot] += duration
        if is_local:
            local += 1
        else:
            remote += 1
    makespan = max(
        (slot_load for node in loads.values() for slot_load in node),
        default=0.0,
    )
    return LocalitySchedule(
        makespan=makespan, data_local_tasks=local, remote_tasks=remote
    )


def fetch_seconds(split_bytes: int, network_mbps_per_node: float) -> float:
    """Time to pull one split from a remote node before mapping it."""
    return split_bytes / (network_mbps_per_node * MIB)
