"""Zero-copy shared-memory data plane for the simulated DFS.

The pickled data plane (the historical default) ships every numpy
record block to process-pool workers *by value*: each task submission
serialises the split's whole point matrix, which is exactly the
communication overhead that left the ``processes`` backend slower than
``serial``. The shared data plane stores each split's block in a
:mod:`multiprocessing.shared_memory` segment instead and ships only a
tiny :class:`SharedBlock` handle (segment name, dtype, shape); workers
map the segment by name — one ``mmap`` the first time, zero copies ever
after — while the ``serial`` and ``threads`` backends read the owner's
mapping directly.

Determinism contract: segment names never enter results, counters or
journals; resolving a handle yields a read-only view of the exact bytes
the owner wrote, so results are byte-identical across data planes just
as they are across executor backends.

Lifecycle: the creating process owns its segments (`create_block`) and
must release them (`release_block` / the DFS ``delete``/``overwrite``/
``release`` hooks). Total replica loss releases a split's segment —
the data is gone, the simulated cluster cannot read it back. Attached
(worker-side) mappings are cached per name and dropped implicitly when
the owner unlinks; POSIX keeps the mapping itself valid until the
worker exits. An ``atexit`` hook releases whatever the owner leaked so
``/dev/shm`` is never littered across runs; the resource-tracker
workaround below keeps worker processes from unlinking segments the
owner still needs (CPython < 3.13 tracks attachments too).
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Iterable, Mapping

import numpy as np

from repro.common.errors import ConfigurationError, DataFormatError

#: Recognised data-plane names, in documentation order.
DATA_PLANE_KINDS = ("pickled", "shared")

#: Environment variable consulted when a DFS (or ``RuntimeConfig``) is
#: constructed without an explicit plane — how whole test suites are
#: re-run zero-copy (``REPRO_DATA_PLANE=shared make test``).
DATA_PLANE_ENV = "REPRO_DATA_PLANE"

#: Prefix of every segment this process creates: leak checks scan
#: ``/dev/shm`` for it, and it keeps our names clear of other tenants.
SEGMENT_PREFIX = "repro-dp"

# Owner-side registry: segment name -> (SharedMemory, owner pid). The
# pid guards fork()ed children (pool workers inherit this dict): only
# the creating process may unlink, everyone else just reads the
# inherited mapping for free.
_OWNED: "dict[str, tuple[shared_memory.SharedMemory, int]]" = {}
# Worker-side cache of attached segments (name -> SharedMemory).
_ATTACHED: "dict[str, shared_memory.SharedMemory]" = {}
_LOCK = threading.Lock()
_SEQ = 0


def shared_memory_available() -> bool:
    """Can this platform actually serve shared segments?

    Probed once per process (create + unlink a minimal segment); the
    result drives the documented fallback: ``data_plane="shared"``
    degrades to ``"pickled"`` instead of failing the run.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


_AVAILABLE: "bool | None" = None


def resolve_data_plane(
    requested: "str | None", environ: "Mapping[str, str] | None" = None
) -> str:
    """Normalise a data-plane request to an *effective* plane.

    ``None`` consults ``$REPRO_DATA_PLANE`` (defaulting to
    ``"pickled"``); ``"shared"`` falls back to ``"pickled"`` on
    platforms without working POSIX shared memory. Unknown names raise
    :class:`~repro.common.errors.ConfigurationError`.
    """
    if requested is None:
        env = os.environ if environ is None else environ
        requested = (env.get(DATA_PLANE_ENV) or "").strip() or "pickled"
    if requested not in DATA_PLANE_KINDS:
        raise ConfigurationError(
            f"data_plane must be one of {DATA_PLANE_KINDS}, got {requested!r}"
        )
    if requested == "shared" and not shared_memory_available():
        return "pickled"
    return requested


def _next_segment_name() -> str:
    """A collision-proof, process-unique segment name.

    The random suffix comes from :mod:`secrets`, never from an
    algorithm RNG stream — names are plumbing, not results.
    """
    global _SEQ
    with _LOCK:
        _SEQ += 1
        seq = _SEQ
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{seq}-{secrets.token_hex(4)}"


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without telling the resource tracker.

    CPython < 3.13 registers *attachments* with the resource tracker
    too (``SharedMemory`` grew ``track=False`` only in 3.13), so a
    worker that merely mapped a segment would fight the owner over its
    lifetime: duplicate registrations collapse in the tracker's set and
    the first unregister erases the owner's entry. Suppressing
    ``register`` for the attach keeps exactly one registration — the
    owner's — which ``unlink`` retires cleanly. Callers hold ``_LOCK``,
    and worker processes never create segments, so the patch window
    cannot swallow a legitimate registration.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedBlock:
    """Array-like handle to a record block living in a shared segment.

    Pickles down to ``(segment name, shape, dtype)`` — a few dozen
    bytes regardless of block size — and resolves lazily to a
    *read-only* numpy view of the segment. Resolution prefers the
    owner registry (zero work in the owning process and in fork()ed
    workers that inherited the mapping) and falls back to attaching by
    name. Supports ``len`` / iteration / indexing / ``np.asarray`` so
    mappers and reducers can treat it exactly like the ndarray it
    replaces.
    """

    __slots__ = ("segment", "shape", "dtype_str", "_view")

    def __init__(self, segment: str, shape: tuple, dtype_str: str):
        self.segment = segment
        self.shape = tuple(int(s) for s in shape)
        self.dtype_str = str(dtype_str)
        self._view: "np.ndarray | None" = None

    def resolve(self) -> np.ndarray:
        """The block as a read-only ``(n, d)`` view — zero-copy."""
        if self._view is None:
            shm = _segment_for(self.segment)
            view = np.ndarray(
                self.shape, dtype=np.dtype(self.dtype_str), buffer=shm.buf
            )
            view.setflags(write=False)
            self._view = view
        return self._view

    # -- ndarray impersonation (the surface mappers actually use) -------

    def __len__(self) -> int:
        return self.shape[0] if self.shape else 0

    def __iter__(self):
        return iter(self.resolve())

    def __getitem__(self, item):
        return self.resolve()[item]

    def __array__(self, dtype=None, copy=None):
        view = self.resolve()
        if dtype is not None and np.dtype(dtype) != view.dtype:
            return view.astype(dtype)
        if copy:
            return view.copy()
        return view

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype_str).itemsize * int(np.prod(self.shape)))

    def __reduce__(self):
        # The cached view never crosses the wire; workers re-resolve.
        return (type(self), (self.segment, self.shape, self.dtype_str))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedBlock({self.segment!r}, shape={self.shape}, "
            f"dtype={self.dtype_str})"
        )


def _segment_for(name: str) -> shared_memory.SharedMemory:
    """The mapped segment for ``name``: owned, cached, or attached now."""
    owned = _OWNED.get(name)
    if owned is not None:
        return owned[0]
    with _LOCK:
        shm = _ATTACHED.get(name)
        if shm is None:
            try:
                shm = _attach_untracked(name)
            except FileNotFoundError:
                raise DataFormatError(
                    f"shared segment {name!r} has been released "
                    "(split deleted, overwritten, or lost)"
                ) from None
            _ATTACHED[name] = shm
    return shm


def create_block(array: np.ndarray) -> SharedBlock:
    """Copy ``array`` into a fresh owned segment; returns its handle.

    The one copy of the shared plane's life: everything downstream —
    every task on every backend, every retry — reads the same bytes.
    """
    arr = np.ascontiguousarray(array)
    name = _next_segment_name()
    shm = shared_memory.SharedMemory(
        name=name, create=True, size=max(1, arr.nbytes)
    )
    dest = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    dest[...] = arr
    with _LOCK:
        _OWNED[name] = (shm, os.getpid())
    return SharedBlock(name, arr.shape, arr.dtype.str)


def release_segment(name: str) -> bool:
    """Unlink an owned segment (no-op outside the owning process).

    Returns True when a segment was actually released. Workers that
    still hold the mapping keep reading it until they drop it — POSIX
    semantics, and exactly what in-flight tasks need.
    """
    with _LOCK:
        entry = _OWNED.get(name)
        if entry is None or entry[1] != os.getpid():
            return False
        del _OWNED[name]
        stale = _ATTACHED.pop(name, None)
    shm, _pid = entry
    if stale is not None:  # pragma: no cover - owner rarely also attaches
        stale.close()
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
    return True


def release_block(block: "SharedBlock | object") -> bool:
    """Release the segment behind ``block`` if it is a shared handle."""
    if isinstance(block, SharedBlock):
        return release_segment(block.segment)
    return False


def active_segments() -> list[str]:
    """Names of segments this process currently owns (leak check API)."""
    pid = os.getpid()
    with _LOCK:
        return sorted(
            name for name, (_shm, owner) in _OWNED.items() if owner == pid
        )


def attached_segments() -> list[str]:
    """Names of foreign segments this process has mapped."""
    with _LOCK:
        return sorted(_ATTACHED)


def orphaned_system_segments() -> list[str]:
    """``/dev/shm`` entries with our prefix that no live owner tracks.

    The cross-process leak check: after a run releases its DFS, nothing
    with :data:`SEGMENT_PREFIX` may remain on the system that this
    process does not own. (Non-Linux platforms without ``/dev/shm``
    simply report nothing — the registry checks still apply.)
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    mine = f"{SEGMENT_PREFIX}-{os.getpid()}-"
    with _LOCK:
        owned = set(_OWNED)
    return sorted(
        entry
        for entry in os.listdir(shm_dir)
        if entry.startswith(mine) and entry not in owned
    )


def release_all() -> int:
    """Release every segment this process owns; returns the count.

    Registered ``atexit`` so crashed or interrupted runs cannot litter
    ``/dev/shm``. Fork()ed children inherit the registry but fail the
    pid guard, so a dying pool worker never unlinks the driver's data.
    """
    released = 0
    for name in active_segments():
        if release_segment(name):
            released += 1
    return released


def detach_all() -> None:
    """Drop this process's cache of attached segments (tests only)."""
    with _LOCK:
        attached = list(_ATTACHED.values())
        _ATTACHED.clear()
    for shm in attached:
        try:
            shm.close()
        except Exception:  # pragma: no cover - buffer still exported
            pass


def wrap_blocks(blocks: "Iterable[np.ndarray]") -> list[SharedBlock]:
    """Copy each block into its own owned segment."""
    return [create_block(block) for block in blocks]


atexit.register(release_all)
