"""In-memory distributed file system with HDFS-like split semantics.

Files are stored as a sequence of fixed-size input splits (64 MB by
default, matching a stock Hadoop installation — the split size the
paper uses when reasoning about ``TestFewClusters`` mapper memory).
Each split carries a block of records plus its accounted byte size, so
every job knows exactly how many bytes it read, without the simulation
having to materialise text.

Records are numpy row-matrices for point data (the common case) or
plain Python lists for small side files. Byte accounting uses a
per-record size supplied at write time; for point data that is the
text-encoding size the paper assumes (~15 characters per coordinate,
see :mod:`repro.data.textio`).

Replication is modelled per split: every split starts with
``replication`` live copies; copies can be lost or corrupted (by the
stochastic :class:`BlockFaultModel` or by the explicit test APIs), reads
transparently fail over to a surviving copy (charging the wasted bytes)
and trigger re-replication, and only a split whose last copy is gone
raises :class:`~repro.common.errors.SplitUnavailableError`.

The filesystem also selects the run's *data plane*
(:mod:`repro.mapreduce.dataplane`): under ``data_plane="shared"`` each
numpy record block is stored in a shared-memory segment and splits
carry tiny :class:`~repro.mapreduce.dataplane.SharedBlock` handles
instead of the arrays themselves, so process-pool workers map the data
by name instead of receiving it by pickle. Segment lifecycle follows
replica semantics: ``delete``/``overwrite`` release a file's segments,
total block loss releases the split's segment at the read that
discovers it (the simulated cluster has no surviving copy to serve),
and ``release()`` drops everything at end of run.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.common.errors import (
    ConfigurationError,
    DataFormatError,
    SplitUnavailableError,
)
from repro.common.validation import check_in_range, check_positive
from repro.mapreduce import dataplane
from repro.mapreduce.dataplane import SharedBlock
from repro.mapreduce.types import stable_hash

#: Default HDFS block/split size (bytes): 64 MB, stock Hadoop 1.x.
DEFAULT_SPLIT_SIZE = 64 * 1024 * 1024

#: Environment variables consulted by :meth:`BlockFaultModel.from_env`
#: (how the ``make chaos`` run turns on block loss for a whole suite).
BLOCK_LOSS_PROB_ENV = "REPRO_BLOCK_LOSS_PROB"
BLOCK_FAULT_SEED_ENV = "REPRO_BLOCK_FAULT_SEED"


@dataclass(frozen=True)
class BlockFaultModel:
    """Stochastic replica loss, applied when splits are read.

    ``replica_loss_probability`` is the chance that the replica a read
    selects turns out lost or corrupt (dead datanode, failed checksum);
    the read then fails over to the next copy — each dead copy costs a
    wasted full-split read — and the filesystem re-replicates the split
    back to full strength afterwards, as the HDFS namenode would. Draws
    come from a dedicated seeded stream, so block faults perturb bytes
    and time but never results (every replica holds identical data).
    """

    replica_loss_probability: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_in_range(
            "replica_loss_probability", self.replica_loss_probability, 0.0, 1.0
        )

    @property
    def enabled(self) -> bool:
        return self.replica_loss_probability > 0.0

    @classmethod
    def from_env(
        cls, environ: "Mapping[str, str] | None" = None
    ) -> "BlockFaultModel | None":
        """Build a model from ``REPRO_BLOCK_LOSS_PROB`` (None if unset).

        ``REPRO_BLOCK_FAULT_SEED`` fixes the loss stream (default 0) so
        chaos runs stay reproducible.
        """
        env = os.environ if environ is None else environ
        raw = (env.get(BLOCK_LOSS_PROB_ENV) or "").strip()
        if not raw:
            return None
        try:
            probability = float(raw)
        except ValueError:
            raise ConfigurationError(
                f"{BLOCK_LOSS_PROB_ENV} must be a float, got {raw!r}"
            ) from None
        if probability == 0.0:
            return None
        raw_seed = (env.get(BLOCK_FAULT_SEED_ENV) or "").strip()
        return cls(
            replica_loss_probability=probability,
            seed=int(raw_seed) if raw_seed else 0,
        )


@dataclass
class ReadReport:
    """What servicing a (possibly degraded) read cost the filesystem."""

    replica_failovers: int = 0  # reads served after skipping dead copies
    replicas_lost: int = 0  # block copies found dead during the read
    re_replications: int = 0  # copies restored from a survivor
    extra_bytes_read: int = 0  # wasted reads of dead/corrupt copies
    bytes_re_replicated: int = 0  # survivor-to-new-copy transfer

    def merge(self, other: "ReadReport") -> None:
        self.replica_failovers += other.replica_failovers
        self.replicas_lost += other.replicas_lost
        self.re_replications += other.re_replications
        self.extra_bytes_read += other.extra_bytes_read
        self.bytes_re_replicated += other.bytes_re_replicated


@dataclass
class NodeLossReport:
    """What one node death cost the filesystem, in one correlated batch.

    Returned by :meth:`InMemoryDFS.fail_node`: every replica the dead
    node hosted is lost at once (the defining property of a node-level
    failure domain, versus the independent per-block losses of
    :class:`BlockFaultModel`), and — when re-replication is on — each
    damaged split is immediately healed onto survivors that do not
    already hold a copy.
    """

    node_id: int
    blocks_lost: int = 0  # replica copies that died with the node
    bytes_lost: int = 0  # their accounted size
    re_replications: int = 0  # copies restored onto survivors
    bytes_re_replicated: int = 0  # survivor-to-new-copy transfer
    splits_unreadable: int = 0  # splits left with zero live copies


@dataclass(frozen=True)
class Split:
    """One input split: a contiguous block of records of a file.

    ``records`` is a numpy row-matrix, a plain list (small side files),
    or — under the shared data plane — a
    :class:`~repro.mapreduce.dataplane.SharedBlock` handle that resolves
    to the same rows zero-copy.
    """

    file_name: str
    index: int
    records: "np.ndarray | list | SharedBlock"
    size_bytes: int

    @property
    def num_records(self) -> int:
        return len(self.records)


@dataclass
class DFSFile:
    """A file stored in the DFS: metadata plus its list of splits."""

    name: str
    splits: list[Split] = field(default_factory=list)
    bytes_per_record: int = 0
    replication: int = 3

    @property
    def num_records(self) -> int:
        return sum(s.num_records for s in self.splits)

    @property
    def size_bytes(self) -> int:
        return sum(s.size_bytes for s in self.splits)

    @property
    def num_splits(self) -> int:
        return len(self.splits)

    def all_records(self) -> "np.ndarray | list":
        """Concatenate every split back into one record block."""
        blocks = [s.records for s in self.splits]
        if not blocks:
            return []
        if isinstance(blocks[0], SharedBlock):
            return np.concatenate([b.resolve() for b in blocks], axis=0)
        if isinstance(blocks[0], np.ndarray):
            return np.concatenate(blocks, axis=0)
        merged: list = []
        for block in blocks:
            merged.extend(block)
        return merged


class InMemoryDFS:
    """A miniature HDFS: named files, splits, and byte counters.

    ``bytes_read`` / ``bytes_written`` accumulate over the life of the
    filesystem and are also mirrored into each job's counters by the
    runtime.

    ``fault_model`` attaches stochastic replica loss (defaulting to the
    ``REPRO_BLOCK_LOSS_PROB`` environment — how chaos runs switch every
    filesystem over); the explicit ``lose_replica`` / ``corrupt_replica``
    / ``lose_block`` APIs inject targeted damage for tests. Reads fail
    over across surviving replicas and heal the file via re-replication
    (``auto_re_replicate``), so only total block loss surfaces as
    :class:`~repro.common.errors.SplitUnavailableError`.
    """

    def __init__(
        self,
        split_size_bytes: int = DEFAULT_SPLIT_SIZE,
        fault_model: "BlockFaultModel | None" = None,
        auto_re_replicate: bool = True,
        data_plane: "str | None" = None,
    ):
        check_positive("split_size_bytes", split_size_bytes)
        self.split_size_bytes = int(split_size_bytes)
        # None defers to $REPRO_DATA_PLANE; "shared" silently degrades
        # to "pickled" on platforms without POSIX shared memory.
        self.data_plane = dataplane.resolve_data_plane(data_plane)
        self._files: dict[str, DFSFile] = {}
        self.bytes_read = 0
        self.bytes_written = 0
        self.fault_model = fault_model or BlockFaultModel.from_env()
        self.auto_re_replicate = auto_re_replicate
        self._block_rng = np.random.default_rng(
            self.fault_model.seed if self.fault_model is not None else 0
        )
        # Per split: [live, dead] replica counts. "Dead" copies are
        # discovered (and charged) at the next read, like a reader
        # hitting a dead datanode.
        self._replicas: dict[tuple[str, int], list[int]] = {}
        # Node-aware placement (node-failure-domain mode): per split,
        # the node ids hosting its live copies. None until a topology
        # is attached — count-only replication stays byte-identical
        # with prior releases when node faults are off.
        self._topology = None
        self._placement: dict[tuple[str, int], list[int]] = {}
        # Lifetime fault statistics (job-level counters mirror the
        # per-read deltas; these are the filesystem-wide totals).
        self.replica_failovers = 0
        self.replicas_lost = 0
        self.re_replications = 0

    # -- write ---------------------------------------------------------

    def write(
        self,
        name: str,
        records: "np.ndarray | list",
        bytes_per_record: int,
        replication: int = 3,
        overwrite: bool = False,
    ) -> DFSFile:
        """Store ``records`` under ``name``, chunked into splits.

        ``bytes_per_record`` is the on-disk (serialised) size of one
        record and drives all byte accounting for the file.
        """
        if name in self._files:
            if not overwrite:
                raise ConfigurationError(f"file already exists: {name!r}")
            # Drop the old incarnation (splits *and* replica health)
            # before storing the new one, so the namespace and
            # ``total_stored_bytes`` never double-count an overwrite.
            self.delete(name)
        check_positive("bytes_per_record", bytes_per_record)
        if len(records) == 0:
            raise DataFormatError(f"refusing to write empty file {name!r}")
        records_per_split = max(1, self.split_size_bytes // bytes_per_record)
        num_splits = math.ceil(len(records) / records_per_split)
        # Only numpy blocks move to shared segments: list records are
        # small side files whose pickling cost is negligible, and lists
        # of arbitrary objects have no stable shared representation.
        wrap = self.data_plane == "shared" and isinstance(records, np.ndarray)
        splits = []
        for i in range(num_splits):
            block = records[i * records_per_split : (i + 1) * records_per_split]
            n_block = len(block)
            if wrap:
                block = dataplane.create_block(block)
            splits.append(
                Split(
                    file_name=name,
                    index=i,
                    records=block,
                    size_bytes=n_block * bytes_per_record,
                )
            )
        f = DFSFile(
            name=name,
            splits=splits,
            bytes_per_record=int(bytes_per_record),
            replication=replication,
        )
        self._files[name] = f
        for split in splits:
            self._replicas[(name, split.index)] = [int(replication), 0]
            self._sync_placement((name, split.index))
        self.bytes_written += f.size_bytes * replication
        return f

    # -- replica health ------------------------------------------------

    def _split_health(self, file_name: str, index: int) -> list[int]:
        try:
            return self._replicas[(file_name, index)]
        except KeyError:
            raise DataFormatError(
                f"no such split in DFS: {file_name!r}[{index}]"
            ) from None

    def live_replicas(self, file_name: str, index: int) -> int:
        """Surviving copies of split ``index`` of ``file_name``."""
        return self._split_health(file_name, index)[0]

    def lose_replica(self, file_name: str, index: int, count: int = 1) -> None:
        """Mark ``count`` copies of one split as lost (dead datanode).

        The loss is silent — the reader discovers it (and pays the
        failover) at the next read, which also re-replicates the split.
        """
        health = self._split_health(file_name, index)
        count = min(int(count), health[0])
        health[0] -= count
        health[1] += count
        self._sync_placement((file_name, index))

    def corrupt_replica(self, file_name: str, index: int, count: int = 1) -> None:
        """Mark ``count`` copies as corrupt (failed checksum on read).

        Indistinguishable from a lost copy at read time: the read fails
        over past it and the copy is discarded and re-replicated.
        """
        self.lose_replica(file_name, index, count)

    def lose_block(self, file_name: str, index: int) -> None:
        """Lose every copy of one split — the unrecoverable HDFS fault."""
        health = self._split_health(file_name, index)
        self.lose_replica(file_name, index, health[0])

    # -- node-aware placement (node-failure-domain mode) ---------------

    def attach_topology(self, cluster_state) -> None:
        """Give replicas node identities from a live ``ClusterState``.

        Called by the runtime when node faults are enabled. Every
        existing and future split gets a deterministic placement
        (stable-hashed over the serving nodes, consecutive like HDFS
        rack-unaware placement), which is what lets
        :meth:`fail_node` lose a node's replicas in one correlated
        batch. Placement is capped at the serving-node count — extra
        copies of an over-replicated file have nowhere distinct to
        live and stay unplaced (they ride along on the placed nodes
        and are not separately lost).

        Re-attaching (a restarted driver building a fresh runtime over
        the same DFS) keeps the placements that already evolved through
        node deaths and re-replication — the DFS is the durable layer,
        so its node assignments survive driver death. Splits without a
        placement yet are placed deterministically as usual.
        """
        self._topology = cluster_state
        for key in sorted(self._replicas):
            self._sync_placement(key)

    @property
    def topology_attached(self) -> bool:
        """Whether replicas carry node identities (node-fault mode)."""
        return self._topology is not None

    def _serving_nodes(self) -> "list[int]":
        return self._topology.serving_node_ids if self._topology else []

    def _sync_placement(self, key: "tuple[str, int]") -> None:
        """Reconcile one split's placement with its live-copy count.

        Shrinks by dropping the most recently placed copies; grows by
        scanning the serving ring from the split's stable-hash offset,
        skipping nodes that already hold a copy. The scan order is a
        pure function of (file, index, serving set), so every backend
        re-derives identical placements.
        """
        if self._topology is None:
            return
        placement = self._placement.setdefault(key, [])
        live = self._replicas[key][0]
        while len(placement) > live:
            placement.pop()
        serving = self._serving_nodes()
        if not serving:
            return
        start = stable_hash(key) % len(serving)
        for offset in range(len(serving)):
            if len(placement) >= min(live, len(serving)):
                break
            node = serving[(start + offset) % len(serving)]
            if node not in placement:
                placement.append(node)

    def replica_placement(self, file_name: str, index: int) -> "tuple[int, ...]":
        """Node ids hosting the live copies of one split (placement
        mode only; empty before :meth:`attach_topology`)."""
        return tuple(self._placement.get((file_name, index), ()))

    def node_block_count(self, node_id: int) -> int:
        """How many live replica copies ``node_id`` currently hosts."""
        return sum(
            placement.count(node_id)
            for placement in self._placement.values()
        )

    def fail_node(self, node_id: int) -> NodeLossReport:
        """Lose every replica hosted by ``node_id`` in one batch.

        The node-level failure domain: unlike :meth:`lose_replica`,
        which kills copies silently for the next read to discover, a
        node death is detected by the heartbeat layer, so the namenode
        reacts immediately — each damaged split is re-replicated onto
        a survivor not already holding a copy (when
        ``auto_re_replicate``). A split whose last copy lived on the
        dead node is left unreadable; the next read raises
        :class:`SplitUnavailableError`, exactly like total block loss.
        """
        report = NodeLossReport(node_id=int(node_id))
        if self._topology is None:
            return report
        for key in sorted(self._placement):
            placement = self._placement[key]
            lost = placement.count(node_id)
            if not lost:
                continue
            health = self._replicas[key]
            self._placement[key] = [n for n in placement if n != node_id]
            health[0] -= lost
            health[1] += lost
            f = self._files.get(key[0])
            size = f.splits[key[1]].size_bytes if f is not None else 0
            report.blocks_lost += lost
            report.bytes_lost += lost * size
            if health[0] == 0:
                report.splits_unreadable += 1
                continue
            if self.auto_re_replicate:
                # Heal exactly this death's losses onto survivors not
                # already holding a copy; copies silently lost earlier
                # (BlockFaultModel) stay dead for the next read to
                # discover and charge, as before. The caller marks the
                # node dead in the ClusterState *before* calling, so
                # the serving ring already excludes it.
                remaining = self._placement[key]
                candidates = [
                    n for n in self._serving_nodes() if n not in remaining
                ]
                healed = min(lost, len(candidates))
                if healed:
                    health[0] += healed
                    health[1] -= healed
                    self._sync_placement(key)
                    report.re_replications += healed
                    report.bytes_re_replicated += healed * size
        self.replicas_lost += report.blocks_lost
        self.re_replications += report.re_replications
        self.bytes_written += report.bytes_re_replicated
        return report

    # -- read ----------------------------------------------------------

    def open(self, name: str) -> DFSFile:
        """Return the file object (metadata + splits) for ``name``."""
        try:
            return self._files[name]
        except KeyError:
            raise DataFormatError(f"no such file in DFS: {name!r}") from None

    def read_all(self, name: str) -> "np.ndarray | list":
        """Read the whole file content, charging the read bytes."""
        f = self.open(name)
        self.charge_read(f)
        return f.all_records()

    def charge_split_read(self, split: Split, replication: int = 3) -> ReadReport:
        """Account one read of ``split``, with replica failover.

        The read tries copies until one survives: every dead or corrupt
        copy encountered costs a wasted full-split read, and losses
        drawn from the fault model happen *now* (the copy dies under the
        reader). A successful degraded read re-replicates the split back
        to ``replication`` copies from a survivor; a read that runs out
        of copies raises :class:`SplitUnavailableError`.
        """
        health = self._replicas.setdefault(
            (split.file_name, split.index), [int(replication), 0]
        )
        report = ReadReport()
        # Copies already known dead are discovered first.
        failovers = health[1]
        model = self.fault_model
        if model is not None and model.enabled:
            # Each read attempt may find its chosen copy freshly dead.
            while (
                health[0] > 0
                and self._block_rng.random() < model.replica_loss_probability
            ):
                health[0] -= 1
                health[1] += 1
                report.replicas_lost += 1
                failovers += 1
            self._sync_placement((split.file_name, split.index))
        report.replica_failovers = failovers
        report.extra_bytes_read = failovers * split.size_bytes
        if health[0] == 0:
            self.replica_failovers += report.replica_failovers
            self.replicas_lost += report.replicas_lost
            self.bytes_read += report.extra_bytes_read
            # Total block loss: no copy survives anywhere in the
            # simulated cluster, so the shared segment backing this
            # split (if any) is released at the read that discovers it.
            # In-flight workers keep their existing mapping (POSIX);
            # later resolves fail loudly instead of reading ghosts.
            dataplane.release_block(split.records)
            raise SplitUnavailableError(
                split.file_name, split.index, health[0] + health[1]
            )
        self.bytes_read += split.size_bytes + report.extra_bytes_read
        if health[1] and self.auto_re_replicate:
            report.re_replications = health[1]
            report.bytes_re_replicated = health[1] * split.size_bytes
            self.bytes_written += report.bytes_re_replicated
            health[0] += health[1]
            health[1] = 0
            self._sync_placement((split.file_name, split.index))
        self.replica_failovers += report.replica_failovers
        self.replicas_lost += report.replicas_lost
        self.re_replications += report.re_replications
        return report

    def charge_read(self, f: DFSFile) -> ReadReport:
        """Account a full scan of ``f`` (used by the job runtime)."""
        report = ReadReport()
        for split in f.splits:
            report.merge(self.charge_split_read(split, f.replication))
        return report

    # -- namespace -----------------------------------------------------

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        """Drop ``name`` from the namespace, releasing its segments."""
        if name not in self._files:
            raise DataFormatError(f"no such file in DFS: {name!r}")
        f = self._files.pop(name)
        for split in f.splits:
            self._replicas.pop((name, split.index), None)
            self._placement.pop((name, split.index), None)
            dataplane.release_block(split.records)

    def release(self) -> int:
        """Delete every file, releasing all shared segments.

        End-of-run teardown for the shared data plane (a no-op registry
        sweep under ``pickled``); returns how many segments were
        actually released. The leak checks in the equivalence suite
        call this and then assert the owner registry is empty.
        """
        released = 0
        for name in self.listdir():
            f = self._files.pop(name)
            for split in f.splits:
                self._replicas.pop((name, split.index), None)
                self._placement.pop((name, split.index), None)
                if dataplane.release_block(split.records):
                    released += 1
        return released

    def listdir(self) -> list[str]:
        return sorted(self._files)

    @property
    def total_stored_bytes(self) -> int:
        """Bytes currently stored, counting replication."""
        return sum(f.size_bytes * f.replication for f in self._files.values())
