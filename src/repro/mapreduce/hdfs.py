"""In-memory distributed file system with HDFS-like split semantics.

Files are stored as a sequence of fixed-size input splits (64 MB by
default, matching a stock Hadoop installation — the split size the
paper uses when reasoning about ``TestFewClusters`` mapper memory).
Each split carries a block of records plus its accounted byte size, so
every job knows exactly how many bytes it read, without the simulation
having to materialise text.

Records are numpy row-matrices for point data (the common case) or
plain Python lists for small side files. Byte accounting uses a
per-record size supplied at write time; for point data that is the
text-encoding size the paper assumes (~15 characters per coordinate,
see :mod:`repro.data.textio`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError, DataFormatError
from repro.common.validation import check_positive

#: Default HDFS block/split size (bytes): 64 MB, stock Hadoop 1.x.
DEFAULT_SPLIT_SIZE = 64 * 1024 * 1024


@dataclass(frozen=True)
class Split:
    """One input split: a contiguous block of records of a file."""

    file_name: str
    index: int
    records: "np.ndarray | list"
    size_bytes: int

    @property
    def num_records(self) -> int:
        return len(self.records)


@dataclass
class DFSFile:
    """A file stored in the DFS: metadata plus its list of splits."""

    name: str
    splits: list[Split] = field(default_factory=list)
    bytes_per_record: int = 0
    replication: int = 3

    @property
    def num_records(self) -> int:
        return sum(s.num_records for s in self.splits)

    @property
    def size_bytes(self) -> int:
        return sum(s.size_bytes for s in self.splits)

    @property
    def num_splits(self) -> int:
        return len(self.splits)

    def all_records(self) -> "np.ndarray | list":
        """Concatenate every split back into one record block."""
        blocks = [s.records for s in self.splits]
        if not blocks:
            return []
        if isinstance(blocks[0], np.ndarray):
            return np.concatenate(blocks, axis=0)
        merged: list = []
        for block in blocks:
            merged.extend(block)
        return merged


class InMemoryDFS:
    """A miniature HDFS: named files, splits, and byte counters.

    ``bytes_read`` / ``bytes_written`` accumulate over the life of the
    filesystem and are also mirrored into each job's counters by the
    runtime.
    """

    def __init__(self, split_size_bytes: int = DEFAULT_SPLIT_SIZE):
        check_positive("split_size_bytes", split_size_bytes)
        self.split_size_bytes = int(split_size_bytes)
        self._files: dict[str, DFSFile] = {}
        self.bytes_read = 0
        self.bytes_written = 0

    # -- write ---------------------------------------------------------

    def write(
        self,
        name: str,
        records: "np.ndarray | list",
        bytes_per_record: int,
        replication: int = 3,
        overwrite: bool = False,
    ) -> DFSFile:
        """Store ``records`` under ``name``, chunked into splits.

        ``bytes_per_record`` is the on-disk (serialised) size of one
        record and drives all byte accounting for the file.
        """
        if name in self._files and not overwrite:
            raise ConfigurationError(f"file already exists: {name!r}")
        check_positive("bytes_per_record", bytes_per_record)
        if len(records) == 0:
            raise DataFormatError(f"refusing to write empty file {name!r}")
        records_per_split = max(1, self.split_size_bytes // bytes_per_record)
        num_splits = math.ceil(len(records) / records_per_split)
        splits = []
        for i in range(num_splits):
            block = records[i * records_per_split : (i + 1) * records_per_split]
            splits.append(
                Split(
                    file_name=name,
                    index=i,
                    records=block,
                    size_bytes=len(block) * bytes_per_record,
                )
            )
        f = DFSFile(
            name=name,
            splits=splits,
            bytes_per_record=int(bytes_per_record),
            replication=replication,
        )
        self._files[name] = f
        self.bytes_written += f.size_bytes * replication
        return f

    # -- read ----------------------------------------------------------

    def open(self, name: str) -> DFSFile:
        """Return the file object (metadata + splits) for ``name``."""
        try:
            return self._files[name]
        except KeyError:
            raise DataFormatError(f"no such file in DFS: {name!r}") from None

    def read_all(self, name: str) -> "np.ndarray | list":
        """Read the whole file content, charging the read bytes."""
        f = self.open(name)
        self.bytes_read += f.size_bytes
        return f.all_records()

    def charge_read(self, f: DFSFile) -> None:
        """Account a full scan of ``f`` (used by the job runtime)."""
        self.bytes_read += f.size_bytes

    # -- namespace -----------------------------------------------------

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        if name not in self._files:
            raise DataFormatError(f"no such file in DFS: {name!r}")
        del self._files[name]

    def listdir(self) -> list[str]:
        return sorted(self._files)

    @property
    def total_stored_bytes(self) -> int:
        """Bytes currently stored, counting replication."""
        return sum(f.size_bytes * f.replication for f in self._files.values())
