"""Simulated cluster topology.

The paper's testbed is 4-12 nodes, each with two quad-core Xeons and
32 GB of RAM, running Hadoop 1.x. A :class:`ClusterConfig` captures the
aspects of that topology that the algorithms actually react to: the
number of nodes, map/reduce slots per node (which bound parallelism and
drive the ``TestFewClusters`` -> ``TestClusters`` switching rule), and
the per-task JVM heap (which bounds the reducer-side projection vector
and reproduces the Figure-2 failures).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.validation import check_in_range, check_positive

MIB = 1024 * 1024

#: Fraction of task heap the algorithm allows itself to plan for; above
#: this the JVM spends its time in garbage collection (paper, Section 3.2).
DEFAULT_MAX_HEAP_USAGE = 0.66


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated Hadoop cluster."""

    nodes: int = 4
    map_slots_per_node: int = 8
    reduce_slots_per_node: int = 8
    task_heap_mb: int = 1024
    max_heap_usage: float = DEFAULT_MAX_HEAP_USAGE

    def __post_init__(self) -> None:
        check_positive("nodes", self.nodes)
        check_positive("map_slots_per_node", self.map_slots_per_node)
        check_positive("reduce_slots_per_node", self.reduce_slots_per_node)
        check_positive("task_heap_mb", self.task_heap_mb)
        check_in_range("max_heap_usage", self.max_heap_usage, 0.0, 1.0)

    @property
    def total_map_slots(self) -> int:
        """Map tasks the cluster can run concurrently."""
        return self.nodes * self.map_slots_per_node

    @property
    def total_reduce_slots(self) -> int:
        """Reduce tasks the cluster can run concurrently — the "total
        reduce capacity" of the paper's switching rule."""
        return self.nodes * self.reduce_slots_per_node

    def executor_concurrency(self, phase: str) -> int:
        """Concurrent tasks the simulated topology allows in ``phase``.

        Parallel task executors cap their in-flight tasks at this bound,
        so a 1-slot cluster really does execute serially regardless of
        worker count (results are identical either way; only wall-clock
        time reacts).
        """
        if phase == "map":
            return self.total_map_slots
        if phase == "reduce":
            return self.total_reduce_slots
        raise ConfigurationError(
            f"phase must be 'map' or 'reduce', got {phase!r}"
        )

    @property
    def task_heap_bytes(self) -> int:
        return self.task_heap_mb * MIB

    @property
    def usable_heap_bytes(self) -> int:
        """Heap a task may plan to use without thrashing the GC."""
        return int(self.task_heap_bytes * self.max_heap_usage)


#: The paper's 4-node testbed (2 quad-core Xeons per node).
PAPER_CLUSTER = ClusterConfig(nodes=4, map_slots_per_node=8, reduce_slots_per_node=8)
