"""Key/value conventions of the simulated MapReduce runtime.

Keys must be hashable and totally ordered within one job (ints, strings
or flat tuples of those). ``stable_hash`` replaces Python's per-process
randomised hashing so partitioning is reproducible across runs.
``sizeof_value`` estimates the serialised size of emitted values, which
feeds the shuffle-byte accounting that the paper's cost model is built
on.
"""

from __future__ import annotations

import zlib

import numpy as np

#: The key-space offset used by ``KMeansAndFindNewCenters`` to multiplex
#: two logical outputs (refined centers vs next-iteration candidates)
#: through a single shuffle. The paper sets it to half the largest Java
#: long: 2**62 ("approximatively 4E18"), which also bounds the number of
#: representable centers.
OFFSET = 2**62

Key = "int | str | tuple"


def stable_hash(key: object) -> int:
    """Deterministic, process-independent hash for partitioner keys."""
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, (int, np.integer)):
        return int(key) & 0x7FFFFFFFFFFFFFFF
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    if isinstance(key, bytes):
        return zlib.crc32(key)
    if isinstance(key, tuple):
        h = 2166136261
        for item in key:
            h = (h * 16777619) ^ stable_hash(item)
        return h & 0x7FFFFFFFFFFFFFFF
    raise TypeError(f"unsupported key type for partitioning: {type(key).__name__}")


def sizeof_value(value: object) -> int:
    """Approximate serialised size, in bytes, of an emitted value.

    Numbers serialise to 8 bytes (Hadoop Long/Double writables), numpy
    arrays to their raw buffer size, strings to their UTF-8 length, and
    containers to the sum of their items. ``None`` is a 0-byte marker.
    """
    if value is None:
        return 0
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bool, np.bool_)):
        return 1
    if isinstance(value, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (tuple, list)):
        return sum(sizeof_value(item) for item in value)
    if isinstance(value, dict):
        return sum(
            sizeof_value(k) + sizeof_value(v) for k, v in value.items()
        )
    raise TypeError(f"cannot size value of type {type(value).__name__}")


def record_count_of(value: object) -> int:
    """Default logical record count of an emitted value (1 unless batched)."""
    return 1
