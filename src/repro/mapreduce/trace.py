"""Execution tracing: task schedules and ASCII Gantt charts.

The cost model reduces a job to phase makespans; this module rebuilds
the underlying schedule (which task ran on which slot, when) with the
same LPT rule, so an operator can *see* why a phase took as long as it
did — stragglers, skewed reducers, under-filled waves.

::

    result = runtime.run(job, dataset)
    print(render_job_trace(result, runtime.cluster))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.validation import check_positive
from repro.mapreduce.cluster import ClusterConfig

if TYPE_CHECKING:  # runtime itself imports observability, which renders
    # via this module — keep the JobResult dependency annotation-only.
    from repro.mapreduce.runtime import JobResult


@dataclass(frozen=True)
class ScheduledTask:
    """One task's placement in the rebuilt schedule."""

    task_index: int
    slot: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def build_schedule(
    task_seconds: "list[float]", slots: int
) -> list[ScheduledTask]:
    """Recreate the LPT schedule used by the cost model.

    Tasks are placed longest-first onto the least-loaded slot, exactly
    as :func:`repro.mapreduce.costmodel.makespan` totals them, so
    ``max(end)`` here equals the reported makespan. The placement
    itself comes from :func:`repro.mapreduce.costmodel.lpt_schedule`,
    the shared scheduling hook.
    """
    from repro.mapreduce.costmodel import lpt_schedule

    return [
        ScheduledTask(task_index=index, slot=slot, start=start, end=end)
        for index, slot, start, end in lpt_schedule(task_seconds, slots)
    ]


def render_gantt(
    schedule: "list[ScheduledTask]",
    width: int = 64,
    title: str | None = None,
) -> str:
    """ASCII Gantt: one row per slot, one block per task.

    Blocks are labelled with the task index modulo 10; a ``.`` marks
    idle time at the end of a slot's row.
    """
    if not schedule:
        return (title + "\n" if title else "") + "(no tasks)"
    check_positive("width", width)
    makespan = max(t.end for t in schedule)
    slots = sorted({t.slot for t in schedule})
    scale = width / makespan if makespan > 0 else 0.0
    lines = []
    if title:
        lines.append(title)
    for slot in slots:
        row = [" "] * width
        filled = 0
        for task in schedule:
            if task.slot != slot:
                continue
            start = min(int(task.start * scale), width - 1)
            # Every task renders at least one character, even when the
            # makespan (and therefore the scale) collapses to zero.
            end = max(start + 1, int(task.end * scale))
            label = str(task.task_index % 10)
            for x in range(start, min(end, width)):
                row[x] = label
            filled = max(filled, min(end, width))
        for x in range(filled, width):
            row[x] = "."
        lines.append(f"slot {slot:>3} |{''.join(row)}|")
    footer = f"{makespan:8.2f}s"
    pad = max(0, width - len(footer))
    lines.append(f"0{'':{pad}}{footer}")
    return "\n".join(lines)


def render_job_trace(result: JobResult, cluster: ClusterConfig) -> str:
    """Full per-job trace: phase summary plus map and reduce Gantts."""
    t = result.timing
    header = (
        f"job {result.job_name!r}: {result.simulated_seconds:.2f}s simulated "
        f"(startup {t.startup_seconds:.2f}s, map {t.map_seconds:.2f}s, "
        f"shuffle {t.shuffle_seconds:.2f}s, reduce {t.reduce_seconds:.2f}s)"
    )
    sections = [header]
    if result.map_task_seconds:
        sections.append(
            render_gantt(
                build_schedule(result.map_task_seconds, cluster.total_map_slots),
                title=f"map phase ({len(result.map_task_seconds)} tasks over "
                f"{cluster.total_map_slots} slots)",
            )
        )
    if result.reduce_task_seconds:
        sections.append(
            render_gantt(
                build_schedule(
                    result.reduce_task_seconds, cluster.total_reduce_slots
                ),
                title=f"reduce phase ({len(result.reduce_task_seconds)} tasks "
                f"over {cluster.total_reduce_slots} slots)",
            )
        )
    return "\n\n".join(sections)
