"""A Hadoop-1.x-like MapReduce runtime with a simulated cluster.

This package is the substrate the paper's algorithms run on: an
in-memory DFS with 64 MB input splits, a map/combine/shuffle/reduce
executor with Hadoop counters, per-task JVM heap accounting (Figure 2's
"Java heap space" failures), and a calibrated cost model that converts
counters into simulated wall-clock time on an N-node cluster.
"""

from repro.mapreduce.cluster import ClusterConfig, PAPER_CLUSTER, MIB
from repro.mapreduce.costmodel import CostModel, CostParameters, JobTiming, makespan
from repro.mapreduce.counters import (
    Counters,
    FRAMEWORK_GROUP,
    MRCounter,
    USER_GROUP,
    UserCounter,
)
from repro.mapreduce.driver import (
    ChainCheckpoint,
    ChainTotals,
    CheckpointingJobChainDriver,
    JobChainDriver,
    checkpoint_file_name,
)
from repro.mapreduce.executors import (
    EXECUTOR_KINDS,
    ProcessPoolTaskExecutor,
    RuntimeConfig,
    SerialExecutor,
    TaskExecutor,
    ThreadPoolTaskExecutor,
    create_executor,
    shutdown_shared_pools,
)
from repro.mapreduce.faults import (
    FaultModel,
    TaskPermanentlyFailedError,
)
from repro.mapreduce.hdfs import BlockFaultModel, NodeLossReport, ReadReport
from repro.mapreduce.nodes import (
    ClusterState,
    NODE_ALIVE,
    NODE_BLACKLISTED,
    NODE_DEAD,
    NODE_DECOMMISSIONED,
    NodeFaultModel,
    NodeState,
)
from repro.mapreduce.locality import (
    LocalitySchedule,
    MapTaskSpec,
    replica_nodes,
    schedule_map_tasks,
)
from repro.mapreduce.partitioners import (
    WeightBalancedPartitioner,
    make_weight_balanced_partitioner,
    reduce_load_imbalance,
)
from repro.mapreduce.hdfs import DEFAULT_SPLIT_SIZE, DFSFile, InMemoryDFS, Split
from repro.mapreduce.job import (
    Job,
    MapContext,
    Mapper,
    ReduceContext,
    Reducer,
    TaskContext,
    default_partitioner,
)
from repro.mapreduce.runtime import JobResult, MapReduceRuntime
from repro.mapreduce.trace import build_schedule, render_gantt, render_job_trace
from repro.mapreduce.types import OFFSET, sizeof_value, stable_hash

__all__ = [
    "ClusterConfig",
    "PAPER_CLUSTER",
    "MIB",
    "CostModel",
    "CostParameters",
    "JobTiming",
    "makespan",
    "Counters",
    "FRAMEWORK_GROUP",
    "USER_GROUP",
    "MRCounter",
    "UserCounter",
    "ChainCheckpoint",
    "ChainTotals",
    "CheckpointingJobChainDriver",
    "JobChainDriver",
    "checkpoint_file_name",
    "BlockFaultModel",
    "NodeLossReport",
    "ReadReport",
    "ClusterState",
    "NodeState",
    "NodeFaultModel",
    "NODE_ALIVE",
    "NODE_DEAD",
    "NODE_BLACKLISTED",
    "NODE_DECOMMISSIONED",
    "EXECUTOR_KINDS",
    "RuntimeConfig",
    "TaskExecutor",
    "SerialExecutor",
    "ThreadPoolTaskExecutor",
    "ProcessPoolTaskExecutor",
    "create_executor",
    "shutdown_shared_pools",
    "FaultModel",
    "TaskPermanentlyFailedError",
    "LocalitySchedule",
    "MapTaskSpec",
    "replica_nodes",
    "schedule_map_tasks",
    "WeightBalancedPartitioner",
    "make_weight_balanced_partitioner",
    "reduce_load_imbalance",
    "DEFAULT_SPLIT_SIZE",
    "DFSFile",
    "InMemoryDFS",
    "Split",
    "Job",
    "Mapper",
    "Reducer",
    "MapContext",
    "ReduceContext",
    "TaskContext",
    "default_partitioner",
    "JobResult",
    "MapReduceRuntime",
    "build_schedule",
    "render_gantt",
    "render_job_trace",
    "OFFSET",
    "sizeof_value",
    "stable_hash",
]
