"""Deterministic random-number handling.

Every stochastic component of the library accepts either a seed or a
``numpy.random.Generator``. These helpers normalise the two forms and
derive independent child generators, so that a single top-level seed
makes a whole experiment reproducible while parallel components (for
example the simulated map tasks) stay statistically independent.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    ``None`` yields a fresh, OS-seeded generator; an ``int`` seeds a new
    generator; an existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected int, Generator or None, got {type(rng).__name__}")


def spawn_seeds(rng: np.random.Generator, n: int) -> list[int]:
    """Derive ``n`` independent child seeds from ``rng``.

    Seeds are drawn in one vectorised call, so seed ``i`` depends only
    on the parent's state and ``i`` — never on who consumes the child
    generators, or in which order. This is what lets parallel task
    executors hand each task its RNG *by task index* while staying
    byte-identical with serial execution (plain ints also cross process
    boundaries more cheaply than generator objects).
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seeds")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [int(s) for s in seeds]


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``."""
    return [np.random.default_rng(s) for s in spawn_seeds(rng, n)]
