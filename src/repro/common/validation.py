"""Small argument-validation helpers used across the library.

They raise :class:`~repro.common.errors.ConfigurationError` (for
parameters) or :class:`~repro.common.errors.DataFormatError` (for data)
with messages naming the offending argument, so failures surface at the
API boundary rather than deep inside a MapReduce job.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError, DataFormatError


def check_positive(name: str, value: float) -> None:
    """Raise unless ``value`` is strictly positive."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise unless ``value`` is zero or positive."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")


def check_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value!r}")


def check_points(points: np.ndarray, name: str = "points") -> np.ndarray:
    """Validate and canonicalise a point matrix.

    Returns a C-contiguous ``float64`` array of shape ``(n, d)`` with
    ``n >= 1`` and ``d >= 1`` and no NaN/inf entries.
    """
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise DataFormatError(f"{name} must be 2-D (n, d), got shape {arr.shape}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise DataFormatError(f"{name} must be non-empty, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise DataFormatError(f"{name} contains NaN or infinite coordinates")
    return np.ascontiguousarray(arr)
