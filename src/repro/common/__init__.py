"""Shared utilities: errors, RNG handling, validation helpers."""

from repro.common.errors import (
    ReproError,
    ConfigurationError,
    DataFormatError,
    JavaHeapSpaceError,
    JobFailedError,
    SplitUnavailableError,
)
from repro.common.rng import ensure_rng, spawn_rng
from repro.common.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_points,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DataFormatError",
    "JavaHeapSpaceError",
    "JobFailedError",
    "SplitUnavailableError",
    "ensure_rng",
    "spawn_rng",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_points",
]
