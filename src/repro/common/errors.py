"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still letting programming errors (``TypeError`` et al.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied.

    Raised eagerly, at object-construction time, so misconfiguration is
    reported before any expensive work starts.
    """


class DataFormatError(ReproError):
    """A dataset record or file could not be parsed or validated."""


class JobFailedError(ReproError):
    """A MapReduce job failed.

    Mirrors Hadoop's behaviour of failing the whole job when a task
    fails repeatedly. The ``cause`` attribute carries the task-level
    exception (for example :class:`JavaHeapSpaceError`).
    """

    def __init__(self, message: str, cause: Exception | None = None):
        super().__init__(message)
        self.cause = cause

    def __reduce__(self):
        return (type(self), (self.args[0], self.cause))


class SplitUnavailableError(ReproError):
    """Every replica of an input split is gone.

    HDFS serves a read from any surviving replica and re-replicates in
    the background; only when the last copy of a block is lost does the
    read fail. This is that failure — the one fault the framework
    cannot hide, which is why it surfaces as a typed error instead of a
    retryable task failure.
    """

    def __init__(self, file_name: str, split_index: int, replication: int):
        self.file_name = file_name
        self.split_index = int(split_index)
        self.replication = int(replication)
        super().__init__(
            f"split {file_name}:{split_index}: all {replication} replicas lost"
        )

    def __reduce__(self):
        return (type(self), (self.file_name, self.split_index, self.replication))


class JournalCorruptError(ReproError):
    """A run journal contains an unreadable record.

    A run killed mid-write legitimately leaves a *truncated final*
    line, which the journal loader tolerates (reconstructing
    interrupted runs is the point); a malformed record anywhere else
    means the file is not a journal — or has been damaged — and raises
    this error instead of a bare ``JSONDecodeError``.
    """

    def __init__(self, path: str, line_number: int, reason: str):
        self.path = str(path)
        self.line_number = int(line_number)
        self.reason = str(reason)
        super().__init__(
            f"{path}:{line_number}: corrupt journal record ({reason})"
        )

    def __reduce__(self):
        return (type(self), (self.path, self.line_number, self.reason))


class SLOViolationError(ReproError):
    """A live SLO watchdog rule was breached and requested an abort.

    Raised by the driver at the first clean abort point *after* the
    breach (for checkpointing chains: right after the iteration's
    checkpoint was written), so a breached run can always be resumed
    with ``fit(resume_from=...)`` once the rule is relaxed. The CLI
    maps this error to its own exit code (3) so operators and CI can
    tell "SLO abort" from "crash".
    """

    def __init__(self, rule: str, limit: float, observed: float):
        self.rule = str(rule)
        self.limit = float(limit)
        self.observed = float(observed)
        super().__init__(
            f"SLO breach: {rule} limit {limit:g} exceeded "
            f"(observed {observed:g}); run aborted after checkpoint"
        )

    def __reduce__(self):
        return (type(self), (self.rule, self.limit, self.observed))


class JavaHeapSpaceError(ReproError):
    """A task exceeded its configured JVM heap.

    Named after the ``java.lang.OutOfMemoryError: Java heap space``
    failure the paper observes in Figure 2 when the ``TestClusters``
    reducer receives more projections than fit in the task JVM.
    """

    def __init__(self, required_bytes: int, heap_bytes: int, task: str = ""):
        self.required_bytes = int(required_bytes)
        self.heap_bytes = int(heap_bytes)
        self.task = task
        mib = 1024 * 1024
        super().__init__(
            f"Java heap space: task {task or '<unknown>'} requires "
            f"{required_bytes / mib:.1f} MiB but heap is {heap_bytes / mib:.1f} MiB"
        )

    def __reduce__(self):
        # Exceptions with non-message __init__ args need explicit pickle
        # support; heap failures raised inside process-pool workers are
        # re-raised in the runtime process.
        return (type(self), (self.required_bytes, self.heap_bytes, self.task))
