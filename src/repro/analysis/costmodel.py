"""Section-4 cost modelisation, in closed form.

The paper derives:

* G-means: starting from one cluster, iteration ``i`` updates
  ``2^(i+1)`` centers to test ``2^i`` clusters; reaching ``k_real``
  takes ``log2(k_real)`` iterations (a few more in practice), the sum
  of tested k over all iterations is ``~2 k_real``, giving
  ``O(4 log2 k)`` dataset reads, ``O(8 n k)`` distance computations and
  ``2 k`` Anderson-Darling tests — **linear in k**;
* multi-k-means: each iteration computes ``sum_{j=1..k_max} j ~ k^2/2``
  centers, hence ``O(n k_max^2)`` distance computations per iteration
  and ``O(n k_max)`` shuffled coordinates — **quadratic in k**.

Two variants of the G-means estimate are exposed: ``paper_gmeans_cost``
uses the paper's published constants (4 jobs per iteration), while
``gmeans_cost`` is parameterised by the actual driver configuration
(``kmeans_iterations`` k-means passes + 1 test job per iteration) so the
estimates can be validated against the simulator's counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.validation import check_positive


def gmeans_iterations(k_real: int, extra_iterations: int = 1) -> int:
    """Iterations to reach ``k_real`` clusters by doubling.

    Theoretical minimum is ``log2(k_real)`` (paper, Section 4); "in
    practice a few additional iterations are required", captured by
    ``extra_iterations``.
    """
    check_positive("k_real", k_real)
    return max(1, math.ceil(math.log2(k_real))) + extra_iterations


def _sum_tested_k(iterations: int, k_real: int) -> int:
    """Sum of tested cluster counts over all iterations: ``2^(n+1)-1``,
    capped by the fact that found clusters stop being tested (the paper
    approximates the sum as ``O(2 k_real)``)."""
    return min(2**(iterations + 1) - 1, 2 * k_real)


@dataclass(frozen=True)
class GMeansCost:
    """Closed-form G-means cost estimate."""

    k_real: int
    n_points: int
    iterations: int
    dataset_reads: int
    distance_computations: int
    ad_tests: int
    shuffled_records: int


@dataclass(frozen=True)
class MultiKMeansCost:
    """Closed-form multi-k-means cost estimate."""

    k_max: int
    n_points: int
    iterations: int
    dataset_reads: int
    distance_computations: int
    distance_computations_per_iteration: int
    shuffled_records: int


def gmeans_cost(
    n_points: int,
    k_real: int,
    kmeans_iterations: int = 2,
    extra_iterations: int = 1,
) -> GMeansCost:
    """Estimate for the implemented driver.

    Each iteration runs ``kmeans_iterations`` k-means passes (the last
    merged with candidate picking) plus one test job, each reading the
    dataset once and computing ``n * centers`` distances, where the
    center count at iteration ``i`` is about twice the tested cluster
    count. The KMeansAndFindNewCenters pass shuffles every point
    twice; with combiners the shuffled volume collapses to one record
    per (cluster, split) — the estimate reports the pre-combine figure
    the paper reasons about.
    """
    check_positive("n_points", n_points)
    check_positive("k_real", k_real)
    check_positive("kmeans_iterations", kmeans_iterations)
    iterations = gmeans_iterations(k_real, extra_iterations)
    jobs_per_iteration = kmeans_iterations + 1
    sum_k = _sum_tested_k(iterations, k_real)
    # Every job assigns all n points against the current centers — about
    # twice the tested-cluster count (each active cluster fields a pair).
    distances = jobs_per_iteration * n_points * 2 * sum_k
    # KMeans passes shuffle n records; the merged pass shuffles 2n; the
    # test job shuffles n projections.
    shuffled = iterations * ((kmeans_iterations - 1) + 2 + 1) * n_points
    return GMeansCost(
        k_real=k_real,
        n_points=n_points,
        iterations=iterations,
        dataset_reads=jobs_per_iteration * iterations,
        distance_computations=distances,
        ad_tests=sum_k,
        shuffled_records=shuffled,
    )


def paper_gmeans_cost(n_points: int, k_real: int) -> GMeansCost:
    """The paper's headline numbers: ``O(4 log2 k)`` reads,
    ``O(8 n k)`` distances, ``2 k`` AD tests."""
    check_positive("n_points", n_points)
    check_positive("k_real", k_real)
    iterations = max(1, math.ceil(math.log2(k_real)))
    return GMeansCost(
        k_real=k_real,
        n_points=n_points,
        iterations=iterations,
        dataset_reads=4 * iterations,
        distance_computations=8 * n_points * k_real,
        ad_tests=2 * k_real,
        shuffled_records=4 * iterations * n_points,
    )


def multi_kmeans_cost(
    n_points: int,
    k_max: int,
    iterations: int = 10,
    k_min: int = 1,
    k_step: int = 1,
) -> MultiKMeansCost:
    """Estimate for the multi-k-means baseline (Algorithm 6).

    Each iteration assigns every point under every candidate k:
    ``n * sum(k_min..k_max)`` distances — ``O(n k_max^2 / 2)`` — and
    shuffles ``n * candidates`` records before combining.
    """
    check_positive("n_points", n_points)
    check_positive("k_max", k_max)
    check_positive("iterations", iterations)
    candidates = list(range(k_min, k_max + 1, k_step))
    sum_k = sum(candidates)
    per_iteration = n_points * sum_k
    return MultiKMeansCost(
        k_max=k_max,
        n_points=n_points,
        iterations=iterations,
        dataset_reads=iterations + 1,  # +1 for the scoring job
        distance_computations=per_iteration * (iterations + 1),
        distance_computations_per_iteration=per_iteration,
        shuffled_records=iterations * n_points * len(candidates),
    )


def crossover_k(
    n_points: int,
    kmeans_iterations: int = 2,
    multi_iterations: int = 1,
    k_max_search: int = 4096,
) -> int:
    """Smallest k_real at which G-means' *total* distance count falls
    below a ``multi_iterations``-iteration multi-k-means run searching
    ``[1, k_real]``.

    With the default of one iteration this is the paper's Figure 3
    comparison ("for a value of k as low as 100, G-means already
    outperforms multi-k-means" — i.e. one baseline iteration already
    costs more than the whole G-means run): the quadratic ``k^2/2``
    term of the baseline overtakes G-means' ``~12 k`` term around a few
    dozen clusters.
    """
    for k in range(2, k_max_search + 1):
        g = gmeans_cost(n_points, k, kmeans_iterations=kmeans_iterations)
        m = multi_kmeans_cost(n_points, k, iterations=multi_iterations)
        if g.distance_computations < m.distance_computations_per_iteration * multi_iterations:
            return k
    return k_max_search
