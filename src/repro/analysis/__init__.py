"""Closed-form cost model from the paper's Section 4."""

from repro.analysis.costmodel import (
    GMeansCost,
    MultiKMeansCost,
    gmeans_cost,
    gmeans_iterations,
    multi_kmeans_cost,
    paper_gmeans_cost,
    crossover_k,
)

__all__ = [
    "GMeansCost",
    "MultiKMeansCost",
    "gmeans_cost",
    "gmeans_iterations",
    "multi_kmeans_cost",
    "paper_gmeans_cost",
    "crossover_k",
]
