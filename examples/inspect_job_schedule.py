"""Inspect one MapReduce job's simulated schedule as an ASCII Gantt.

Useful when a phase is slower than expected: the Gantt shows whether
the time went to stragglers, skewed reducers, or under-filled task
waves. This example runs a single ``TestClusters`` job over a skewed
mixture twice — hash-partitioned and weight-balanced — and prints both
schedules side by side.

Run:  python examples/inspect_job_schedule.py
"""

import numpy as np

from repro.data.generator import generate_gaussian_mixture
from repro.evaluation.harness import BENCH_COST, build_world
from repro.core.test_clusters import make_test_clusters_job
from repro.mapreduce import (
    make_weight_balanced_partitioner,
    reduce_load_imbalance,
    render_job_trace,
)
from repro.clustering.metrics import assign_nearest

from dataclasses import replace


def main() -> None:
    # One giant cluster and several small ones: classic reducer skew.
    weights = np.array([0.6, 0.1, 0.1, 0.08, 0.06, 0.06])
    mixture = generate_gaussian_mixture(
        40_000, 6, 5, rng=5, weights=weights, center_low=0, center_high=200
    )
    cost = replace(
        BENCH_COST, seconds_per_ad_point=1e-5, task_startup_seconds=0.0
    )
    world = build_world(mixture, nodes=2, target_splits=12, seed=5, cost=cost)
    labels, _ = assign_nearest(mixture.points, mixture.centers)
    sizes = {c: int((labels == c).sum()) for c in range(6)}
    pairs = {
        c: np.vstack([mixture.centers[c] + 0.5, mixture.centers[c] - 0.5])
        for c in range(6)
    }

    for mode in ("hash", "balanced"):
        partitioner = (
            make_weight_balanced_partitioner(sizes, 4)
            if mode == "balanced"
            else None
        )
        job = make_test_clusters_job(
            mixture.centers, pairs, alpha=0.01, num_reduce_tasks=4,
            name=f"TestClusters-{mode}", partitioner=partitioner,
        )
        result = world.runtime.run(job, world.dataset)
        print(f"=== {mode} partitioning "
              f"(reduce imbalance {reduce_load_imbalance(result):.2f}) ===")
        print(render_job_trace(result, world.runtime.cluster))
        print()


if __name__ == "__main__":
    main()
