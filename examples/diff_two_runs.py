"""Record two seeded G-means runs and diff their journals.

The first two runs share seeds and cost constants, so their journals
are identical modulo wall clock and the diff is clean — that is the
shape of a CI perf gate (compare today's run against a committed
baseline journal). The third run injects a cost regression (an
inflated per-record map cost) and the same diff flags it::

    python examples/diff_two_runs.py [output-dir]

Equivalent CLI: ``python -m repro diff baseline.jsonl candidate.jsonl``.
"""

import dataclasses
import pathlib
import sys

from repro import (
    ClusterConfig,
    CostParameters,
    InMemoryDFS,
    MapReduceRuntime,
    MRGMeans,
    MRGMeansConfig,
    generate_gaussian_mixture,
    write_points,
)
from repro.observability import diff_replays, file_journal, render_diff, replay_journal

TRUE_K = 4


def record_run(journal_path: str, cost: "CostParameters | None" = None) -> None:
    mixture = generate_gaussian_mixture(
        n_points=3_000, n_clusters=TRUE_K, dimensions=4, rng=42
    )
    dfs = InMemoryDFS(split_size_bytes=32 * 1024)
    dataset = write_points(dfs, "points", mixture.points)
    runtime = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=4),
        cost=cost,
        rng=7,
        journal=file_journal(journal_path),
    )
    result = MRGMeans(runtime, MRGMeansConfig(seed=7)).fit(dataset)
    print(f"recorded {journal_path}: k={result.k_found} "
          f"in {result.simulated_seconds:.2f}s simulated")


def main() -> int:
    out_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "reports")
    out_dir.mkdir(parents=True, exist_ok=True)
    baseline = str(out_dir / "baseline.jsonl")
    candidate = str(out_dir / "candidate.jsonl")
    regressed = str(out_dir / "regressed.jsonl")

    record_run(baseline)
    record_run(candidate)
    # At this scale the fixed startup constants dominate, so the
    # injected per-record cost must be large to show; on paper-scale
    # datasets a doubled per-record cost trips the same gate.
    slow = dataclasses.replace(CostParameters(), seconds_per_map_record=2e-3)
    record_run(regressed, cost=slow)

    print("\n--- identical seeds: the diff is clean " + "-" * 24)
    clean = diff_replays(
        replay_journal(baseline),
        replay_journal(candidate),
        baseline_path=baseline,
        candidate_path=candidate,
    )
    print(render_diff(clean))

    print("\n--- inflated per-record map cost: the diff gates " + "-" * 14)
    gated = diff_replays(
        replay_journal(baseline),
        replay_journal(regressed),
        baseline_path=baseline,
        candidate_path=regressed,
    )
    print(render_diff(gated))
    assert clean.ok and not gated.ok
    return 0


if __name__ == "__main__":
    sys.exit(main())
