"""Network behaviour clustering with an unknown number of groups.

The paper's authors work in cyber defence (Royal Military Academy,
Symantec Research): the motivating workload is clustering feature
vectors extracted from network telemetry, where the number of distinct
behaviour profiles is never known in advance. This example builds a
synthetic flow-feature dataset (normal service profiles + a small scan
pattern), lets MR G-means determine the number of behaviour groups, and
then flags the smallest/tightest groups for analyst review.

Run:  python examples/network_anomaly_detection.py
"""

import numpy as np

from repro import (
    ClusterConfig,
    InMemoryDFS,
    MapReduceRuntime,
    MRGMeans,
    MRGMeansConfig,
    write_points,
)
from repro.clustering import assign_nearest, cluster_sizes

#: Feature vector per flow window:
#: [log bytes, log packets, mean pkt size, duration, distinct ports,
#:  distinct peers, syn ratio, inbound ratio]
FEATURES = [
    "log_bytes",
    "log_packets",
    "mean_pkt_size",
    "duration_s",
    "distinct_ports",
    "distinct_peers",
    "syn_ratio",
    "inbound_ratio",
]

# Behaviour profiles: (name, mean vector, std, weight).
PROFILES = [
    ("web browsing", [10, 5, 6.0, 12, 2, 8, 0.1, 0.7], 0.8, 0.40),
    ("video streaming", [16, 10, 9.5, 600, 1, 2, 0.02, 0.95], 0.7, 0.20),
    ("ssh admin", [8, 4, 5.0, 300, 1, 1, 0.05, 0.4], 0.5, 0.10),
    ("mail relay", [11, 6, 7.0, 5, 2, 30, 0.15, 0.5], 0.8, 0.15),
    ("backup job", [18, 12, 9.8, 3600, 1, 1, 0.01, 0.05], 0.5, 0.13),
    ("port scan", [6, 6, 3.0, 1, 200, 150, 0.95, 0.02], 0.4, 0.02),
]


def synthesize_flows(n_flows: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Draw flow windows from the behaviour profiles."""
    weights = np.array([p[3] for p in PROFILES])
    weights = weights / weights.sum()
    labels = rng.choice(len(PROFILES), size=n_flows, p=weights)
    means = np.array([p[1] for p in PROFILES], dtype=float)
    stds = np.array([p[2] for p in PROFILES], dtype=float)
    points = means[labels] + rng.standard_normal(
        (n_flows, len(FEATURES))
    ) * stds[labels][:, None]
    return points, labels


def main() -> None:
    rng = np.random.default_rng(7)
    points, true_labels = synthesize_flows(40_000, rng)

    dfs = InMemoryDFS(split_size_bytes=512 * 1024)
    dataset = write_points(dfs, "flows", points)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=4), rng=7)

    result = MRGMeans(runtime, MRGMeansConfig(seed=7)).fit(dataset)
    print(f"behaviour profiles in the data: {len(PROFILES)}")
    print(f"groups discovered by G-means:   {result.k_found}")
    print(f"iterations: {result.iterations}, simulated time:"
          f" {result.simulated_seconds:.1f} s")
    print()

    labels, sq = assign_nearest(points, result.centers)
    sizes = cluster_sizes(labels, result.k_found)
    share = sizes / sizes.sum()

    print(f"{'group':>5} {'flows':>8} {'share':>7}  {'top feature deviations'}")
    baseline = points.mean(axis=0)
    spread = points.std(axis=0)
    for group in np.argsort(sizes):
        center = result.centers[group]
        z = (center - baseline) / spread
        top = np.argsort(-np.abs(z))[:3]
        descr = ", ".join(f"{FEATURES[i]}={z[i]:+.1f}sd" for i in top)
        flag = "  <-- REVIEW" if share[group] < 0.05 else ""
        print(f"{group:>5} {sizes[group]:>8} {share[group]:>6.1%}  {descr}{flag}")

    # Did the rare scan profile land in a flagged small group?
    scan_members = true_labels == len(PROFILES) - 1
    scan_groups = set(labels[scan_members].tolist())
    small_groups = set(np.flatnonzero(share < 0.05).tolist())
    caught = scan_groups & small_groups
    print()
    print(f"port-scan flows concentrated in group(s) {sorted(scan_groups)};"
          f" flagged for review: {'yes' if caught else 'no'}")


if __name__ == "__main__":
    main()
