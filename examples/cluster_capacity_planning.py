"""Capacity planning: how topology and engine features change runtime.

The simulated runtime exposes exactly the knobs an operator tunes on a
real Hadoop/Spark deployment. This example runs the same G-means job
while sweeping (a) the node count — the paper's Table 4 — and (b) the
Spark-style in-memory caching of the input dataset that the paper's
future-work section proposes, and reports the simulated effect of each.

Run:  python examples/cluster_capacity_planning.py
"""

from repro import (
    ClusterConfig,
    InMemoryDFS,
    MapReduceRuntime,
    MRGMeans,
    MRGMeansConfig,
    generate_gaussian_mixture,
    write_points,
)
from repro.evaluation.harness import BENCH_COST


from dataclasses import replace

# The paper's full dataset scan costs minutes (16 GB over commodity
# disks); our scaled dataset is a few MB, so to show the same
# read-vs-compute balance the disk term is scaled down with it.
EXAMPLE_COST = replace(BENCH_COST, disk_read_mbps=0.1)


def run_once(points, nodes: int, cache_input: bool):
    dfs = InMemoryDFS(split_size_bytes=32 * 1024)  # ~200 splits
    dataset = write_points(dfs, "points", points)
    runtime = MapReduceRuntime(
        dfs, cluster=ClusterConfig(nodes=nodes), cost=EXAMPLE_COST, rng=3
    )
    config = MRGMeansConfig(seed=3, strategy="reducer", num_reduce_tasks=16)
    driver = MRGMeans(runtime, config, cache_input=cache_input)
    return driver.fit(dataset)


def main() -> None:
    mixture = generate_gaussian_mixture(
        n_points=40_000, n_clusters=16, dimensions=10, rng=3
    )

    print("node scaling (same job, bigger cluster — cf. paper Table 4):")
    print(f"{'nodes':>6} {'sim time':>10} {'speedup':>9} {'reads':>6}")
    base = None
    for nodes in (2, 4, 8, 12):
        result = run_once(mixture.points, nodes, cache_input=False)
        base = base or result.simulated_seconds
        print(
            f"{nodes:>6} {result.simulated_seconds:>9.1f}s"
            f" {base / result.simulated_seconds:>8.2f}x"
            f" {result.totals.dataset_reads:>6}"
        )

    print()
    print("engine feature: cache the dataset in memory between jobs")
    print("(the SPARK optimisation in the paper's future work):")
    for cache in (False, True):
        result = run_once(mixture.points, 4, cache_input=cache)
        label = "cached " if cache else "disk   "
        print(
            f"  {label}: {result.simulated_seconds:7.1f}s simulated,"
            f" {result.totals.dataset_reads} disk reads,"
            f" {result.totals.cached_reads} cached reads"
        )


if __name__ == "__main__":
    main()
