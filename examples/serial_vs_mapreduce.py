"""Serial G-means / X-means vs the MapReduce port, side by side.

Runs the original serial algorithms (Hamerly & Elkan's G-means with
PCA-based child placement, Pelleg & Moore's X-means) and the paper's
MapReduce G-means on the same dataset, then applies the center-merge
post-processing the paper leaves as future work.

Run:  python examples/serial_vs_mapreduce.py
"""

import time

import numpy as np

from repro import (
    ClusterConfig,
    InMemoryDFS,
    MapReduceRuntime,
    MRGMeans,
    MRGMeansConfig,
    average_distance,
    gmeans,
    merge_gmeans_centers,
    write_points,
    xmeans,
)
from repro.clustering import GMeansOptions
from repro.data import demo_r2_dataset


def main() -> None:
    mixture = demo_r2_dataset(n_points=6000, rng=19)
    points = mixture.points
    print(f"dataset: {points.shape[0]} points in R^2,"
          f" {mixture.n_clusters} true clusters")
    print()
    print(f"{'algorithm':<26}{'k':>4}{'avg dist':>10}{'wall (s)':>10}")
    print("-" * 50)

    t0 = time.perf_counter()
    serial = gmeans(points, GMeansOptions(child_init="pca"), rng=19)
    print(
        f"{'serial G-means (pca)':<26}{serial.k:>4}"
        f"{average_distance(points, serial.centers):>10.3f}"
        f"{time.perf_counter() - t0:>10.2f}"
    )

    t0 = time.perf_counter()
    serial_rand = gmeans(points, GMeansOptions(child_init="random"), rng=19)
    print(
        f"{'serial G-means (random)':<26}{serial_rand.k:>4}"
        f"{average_distance(points, serial_rand.centers):>10.3f}"
        f"{time.perf_counter() - t0:>10.2f}"
    )

    t0 = time.perf_counter()
    x = xmeans(points, k_init=2, rng=19)
    print(
        f"{'X-means (BIC)':<26}{x.k:>4}"
        f"{average_distance(points, x.centers):>10.3f}"
        f"{time.perf_counter() - t0:>10.2f}"
    )

    dfs = InMemoryDFS(split_size_bytes=64 * 1024)
    dataset = write_points(dfs, "pts", points)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=4), rng=19)
    t0 = time.perf_counter()
    mr = MRGMeans(runtime, MRGMeansConfig(seed=19)).fit(dataset)
    print(
        f"{'MR G-means':<26}{mr.k_found:>4}"
        f"{average_distance(points, mr.centers):>10.3f}"
        f"{time.perf_counter() - t0:>10.2f}"
    )

    merged = merge_gmeans_centers(points, mr.centers, rng=19)
    print(
        f"{'MR G-means + merge':<26}{merged.shape[0]:>4}"
        f"{average_distance(points, merged):>10.3f}{'-':>10}"
    )

    print()
    print(
        f"MR G-means simulated cluster time: {mr.simulated_seconds:.1f} s"
        f" over {mr.totals.jobs} jobs / {mr.totals.dataset_reads} dataset reads"
    )


if __name__ == "__main__":
    main()
