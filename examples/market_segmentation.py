"""Market segmentation: MR G-means vs the classical "choose k" toolbox.

A retailer wants customer segments but has no idea how many exist. The
classical route (the one whose cost motivates the paper) runs k-means
for every candidate k and scores the results with a criterion — elbow,
silhouette, jump, gap, BIC. G-means gets there in one pass. This
example runs both routes on the same synthetic customer-feature dataset
and compares answers and costs.

Run:  python examples/market_segmentation.py
"""

import numpy as np

from repro import (
    ClusterConfig,
    InMemoryDFS,
    MapReduceRuntime,
    MRGMeans,
    MRGMeansConfig,
    MultiKMeans,
    choose_k,
    generate_gaussian_mixture,
    write_points,
)
from repro.analysis import gmeans_cost, multi_kmeans_cost

TRUE_SEGMENTS = 7
FEATURES = 6  # e.g. recency, frequency, monetary, basket size, returns, tenure


def main() -> None:
    mixture = generate_gaussian_mixture(
        n_points=12_000,
        n_clusters=TRUE_SEGMENTS,
        dimensions=FEATURES,
        rng=11,
        cluster_std=1.0,
    )
    points = mixture.points

    # --- Route 1: MR G-means — one adaptive pass -----------------------
    dfs = InMemoryDFS(split_size_bytes=256 * 1024)
    dataset = write_points(dfs, "customers", points)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=4), rng=11)
    gmeans_result = MRGMeans(runtime, MRGMeansConfig(seed=11)).fit(dataset)

    # --- Route 2: multi-k-means + scoring job (the paper's baseline) ---
    multi_result = MultiKMeans(
        runtime, k_min=2, k_max=14, iterations=10, criterion="elbow",
        init="kmeans++", seed=11,
    ).fit(dataset)

    # --- Route 3: the serial criteria from the related-work section ----
    criteria_answers = {
        method: choose_k(points, range(2, 15), method=method, rng=11)
        for method in ("elbow", "silhouette", "jump", "bic")
    }

    print(f"true number of segments: {TRUE_SEGMENTS}")
    print()
    print(f"{'method':<28}{'k':>4}   cost driver")
    print("-" * 64)
    g_cost = gmeans_cost(len(points), gmeans_result.k_found)
    print(
        f"{'MR G-means':<28}{gmeans_result.k_found:>4}   "
        f"~{g_cost.distance_computations / 1e6:.0f}M distances,"
        f" {gmeans_result.totals.dataset_reads} reads"
    )
    m_cost = multi_kmeans_cost(len(points), 14, iterations=10, k_min=2)
    print(
        f"{'MR multi-k-means + elbow':<28}{multi_result.best_k:>4}   "
        f"~{m_cost.distance_computations / 1e6:.0f}M distances,"
        f" {multi_result.totals.dataset_reads} reads"
    )
    for method, k in criteria_answers.items():
        print(f"{'serial sweep + ' + method:<28}{k:>4}   O(n k^2) sweep")
    print()
    print(
        "simulated running time: G-means"
        f" {gmeans_result.simulated_seconds:.1f} s vs multi-k-means"
        f" {multi_result.simulated_seconds:.1f} s on the same 4 nodes"
    )


if __name__ == "__main__":
    main()
