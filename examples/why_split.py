"""Why did G-means split (or keep) that cluster?

The split decision is one dimension deep: project the cluster onto the
segment joining its two candidate children, normalise, Anderson-Darling.
This example builds one genuinely Gaussian cluster and one that hides
two modes, walks both through the exact decision pipeline, and renders
what the test "sees" as ASCII histograms with statistics and p-values.

Run:  python examples/why_split.py
"""

import numpy as np

from repro.clustering import lloyd_kmeans
from repro.evaluation.figures import ascii_histogram
from repro.stats import (
    anderson_darling_normality,
    anderson_darling_pvalue,
)
from repro.stats.projection import project_onto


def decide(name: str, points: np.ndarray, rng: np.random.Generator) -> None:
    # Two candidate children, refined by k-means — exactly what the
    # KMeansAndFindNewCenters job hands to TestClusters.
    seeds = points[rng.choice(points.shape[0], size=2, replace=False)]
    children = lloyd_kmeans(points, init=seeds, max_iterations=10).centers
    v = children[0] - children[1]
    projections = project_onto(points, v)
    result = anderson_darling_normality(projections, alpha=0.01)
    verdict = "KEEP (looks Gaussian)" if result.is_normal else "SPLIT"
    print(f"=== {name}")
    print(
        ascii_histogram(
            projections,
            bins=48,
            height=8,
            title=f"projections onto c1-c2 (n={result.n})",
        )
    )
    print(
        f"A*^2 = {result.statistic:.3f}, critical(0.01) = {result.critical:.3f},"
        f" p ~ {anderson_darling_pvalue(result.statistic):.2e}  ->  {verdict}"
    )
    print()


def main() -> None:
    rng = np.random.default_rng(13)
    gaussian = rng.normal(loc=(5.0, 5.0), scale=1.0, size=(4000, 2))
    decide("one true Gaussian cluster", gaussian, rng)

    hidden_pair = np.vstack(
        [
            rng.normal((2.0, 5.0), 1.0, size=(2000, 2)),
            rng.normal((8.0, 5.0), 1.0, size=(2000, 2)),
        ]
    )
    decide("two clusters caught under one center", hidden_pair, rng)


if __name__ == "__main__":
    main()
