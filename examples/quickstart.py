"""Quickstart: find k automatically with MapReduce G-means.

Generates a synthetic Gaussian mixture with an "unknown" number of
clusters, places it on the simulated DFS, runs MR G-means, and reports
what it found — including the per-iteration trace of Algorithm 1.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusterConfig,
    InMemoryDFS,
    MapReduceRuntime,
    MRGMeans,
    MRGMeansConfig,
    average_distance,
    generate_gaussian_mixture,
    write_points,
)

TRUE_K = 25  # pretend we do not know this


def main() -> None:
    # 1. A dataset with an unknown number of clusters.
    mixture = generate_gaussian_mixture(
        n_points=30_000, n_clusters=TRUE_K, dimensions=10, rng=42
    )

    # 2. A simulated 4-node Hadoop cluster with an in-memory DFS.
    dfs = InMemoryDFS(split_size_bytes=256 * 1024)
    dataset = write_points(dfs, "points", mixture.points)
    runtime = MapReduceRuntime(dfs, cluster=ClusterConfig(nodes=4), rng=7)

    # 3. Run MR G-means (Algorithm 1 of the paper).
    driver = MRGMeans(runtime, MRGMeansConfig(seed=7))
    result = driver.fit(dataset)

    # 4. Report.
    print(f"true k:        {TRUE_K}")
    print(f"discovered k:  {result.k_found}")
    print(f"iterations:    {result.iterations}")
    print(f"simulated t:   {result.simulated_seconds:.1f} s on 4 nodes")
    print(f"dataset reads: {result.totals.dataset_reads}")
    print(f"distances:     {result.totals.distance_computations:,}")
    print(f"avg distance:  {average_distance(mixture.points, result.centers):.3f}")
    print()
    print("iteration trace (Algorithm 1):")
    for h in result.history:
        print(
            f"  it{h.iteration:>2}: k {h.k_before:>3} -> {h.k_after:<3}"
            f" tested={h.clusters_tested:<3} split={h.clusters_split:<3}"
            f" strategy={h.strategy:<7} t={h.simulated_seconds:.1f}s"
        )


if __name__ == "__main__":
    main()
