"""Record a (optionally chaotic) G-means run into a run journal.

Runs MR G-means over a synthetic mixture with journalling enabled and
prints where the journal landed; render it afterwards with::

    python -m repro trace <journal> --gantt --metrics

Fault injection comes from the environment, so the same script records
a clean run or a chaos run (``make trace`` sets the chaos variables)::

    python examples/run_with_journal.py run.jsonl
    REPRO_TASK_FAILURE_PROB=0.05 REPRO_MAX_JOB_RETRIES=3 \
        python examples/run_with_journal.py chaos.jsonl
"""

import sys

from repro import (
    ClusterConfig,
    InMemoryDFS,
    MapReduceRuntime,
    MRGMeans,
    MRGMeansConfig,
    generate_gaussian_mixture,
    write_points,
)
from repro.observability import file_journal

TRUE_K = 6


def main() -> int:
    journal_path = sys.argv[1] if len(sys.argv) > 1 else "run.jsonl"

    mixture = generate_gaussian_mixture(
        n_points=6_000, n_clusters=TRUE_K, dimensions=4, rng=42
    )
    dfs = InMemoryDFS(split_size_bytes=64 * 1024)
    dataset = write_points(dfs, "points", mixture.points)
    runtime = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=4),
        rng=7,
        journal=file_journal(journal_path),
    )

    result = MRGMeans(runtime, MRGMeansConfig(seed=7)).fit(dataset)

    print(f"true k:              {TRUE_K}")
    print(f"k found:             {result.k_found}")
    print(f"iterations:          {result.iterations}")
    print(f"simulated time:      {result.simulated_seconds:.2f}s")
    print(f"job retries:         {result.totals.counters.get('framework', 'JOB_RETRIES')}")
    print(f"journal written to:  {journal_path}")
    print(f"render it with:      python -m repro trace {journal_path} --gantt")
    return 0


if __name__ == "__main__":
    sys.exit(main())
