"""Record a (optionally chaotic) G-means run into a run journal.

Runs MR G-means over a synthetic mixture with journalling enabled and
prints where the journal landed; render it afterwards with::

    python -m repro trace <journal> --gantt --metrics

Fault injection and live telemetry come from the environment, so the
same script records a clean run, a chaos run, or a live-watched run
(``make trace`` sets the chaos variables, ``make live`` the telemetry
ones)::

    python examples/run_with_journal.py run.jsonl
    REPRO_TASK_FAILURE_PROB=0.05 REPRO_MAX_JOB_RETRIES=3 \
        python examples/run_with_journal.py chaos.jsonl
    REPRO_LIVE=1 REPRO_METRICS_PORT=8787 REPRO_PROFILE_TASKS=1 \
        python examples/run_with_journal.py live.jsonl

An optional second argument scales the dataset (default 6000 points) —
the CI live-smoke job uses a larger run so there is time to scrape the
metrics endpoint mid-flight.
"""

import os
import sys

from repro import (
    ClusterConfig,
    InMemoryDFS,
    MapReduceRuntime,
    MRGMeans,
    MRGMeansConfig,
    generate_gaussian_mixture,
    write_points,
)
from repro.cli import EXIT_SLO_BREACH
from repro.common.errors import SLOViolationError
from repro.observability import JOURNAL_ENV

TRUE_K = 6


def main() -> int:
    journal_path = sys.argv[1] if len(sys.argv) > 1 else "run.jsonl"
    n_points = int(sys.argv[2]) if len(sys.argv) > 2 else 6_000

    # Publish the journal path through the environment instead of
    # constructing a file sink directly: Journal.from_env composes the
    # file journal with whatever live telemetry the environment asks
    # for (REPRO_LIVE / REPRO_METRICS_PORT / REPRO_SLO).
    os.environ[JOURNAL_ENV] = journal_path

    mixture = generate_gaussian_mixture(
        n_points=n_points, n_clusters=TRUE_K, dimensions=4, rng=42
    )
    dfs = InMemoryDFS(split_size_bytes=64 * 1024)
    dataset = write_points(dfs, "points", mixture.points)
    runtime = MapReduceRuntime(
        dfs,
        cluster=ClusterConfig(nodes=4),
        rng=7,
    )

    try:
        result = MRGMeans(runtime, MRGMeansConfig(seed=7)).fit(dataset)
    except SLOViolationError as exc:
        # Same contract as the CLI: a clean, resumable SLO abort gets
        # its own exit code so CI can tell it from a crash.
        print(f"[repro] {exc}", file=sys.stderr)
        return EXIT_SLO_BREACH

    print(f"true k:              {TRUE_K}")
    print(f"k found:             {result.k_found}")
    print(f"iterations:          {result.iterations}")
    print(f"simulated time:      {result.simulated_seconds:.2f}s")
    print(f"job retries:         {result.totals.counters.get('framework', 'JOB_RETRIES')}")
    print(f"journal written to:  {journal_path}")
    print(f"render it with:      python -m repro trace {journal_path} --gantt")
    return 0


if __name__ == "__main__":
    sys.exit(main())
