PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-processes test-shared test-all chaos chaos-node trace live analyze report ablate tune bench-executors bench

# Tier-1: the full suite on the default (serial) backend.
test:
	$(PYTHON) -m pytest -x -q

# The same suite re-run over the process-pool executor backend: every
# runtime constructed without an explicit config picks the backend up
# from the environment, so this exercises picklability and the
# determinism-equivalence contract end to end.
test-processes:
	REPRO_EXECUTOR=processes REPRO_NUM_WORKERS=2 $(PYTHON) -m pytest -x -q

# And once more over the zero-copy shared-memory data plane: numpy
# splits live in shared segments, workers attach instead of unpickling.
# Results must stay byte-identical and no segment may leak.
test-shared:
	REPRO_EXECUTOR=processes REPRO_NUM_WORKERS=2 REPRO_DATA_PLANE=shared \
	$(PYTHON) -m pytest -x -q

test-all: test test-processes test-shared

# Chaos mode: the integration suite with task failures and DFS block
# loss injected through the environment, and job retries turned on to
# ride them out. Every assertion about clustering results still holds —
# faults and recovery perturb simulated time, never results.
chaos:
	REPRO_TASK_FAILURE_PROB=0.05 \
	REPRO_BLOCK_LOSS_PROB=0.02 \
	REPRO_MAX_JOB_RETRIES=3 \
	$(PYTHON) -m pytest tests/integration -x -q

# Node-failure chaos: correlated node loss, heartbeat detection and
# capacity-aware re-decisions. Runs the node-domain suites, then
# records a seeded node-chaos G-means run and gates it against the
# committed baseline journal — node deaths are drawn from a seeded
# stream, so the fresh run diffs clean unless something regressed.
NODE_CHAOS_JOURNAL ?= reports/node-chaos-run.jsonl
NODE_CHAOS_BASELINE ?= benchmarks/baselines/node-chaos-gmeans-seed7.jsonl
chaos-node:
	$(PYTHON) -m pytest tests/mapreduce/test_nodes.py \
		tests/integration/test_node_chaos.py \
		tests/properties/test_property_nodes.py -x -q
	rm -f $(NODE_CHAOS_JOURNAL)
	REPRO_NODE_FAILURE_PROB=0.02 \
	REPRO_NODE_FAULT_SEED=3 \
	$(PYTHON) examples/run_with_journal.py $(NODE_CHAOS_JOURNAL)
	$(PYTHON) -m repro analyze $(NODE_CHAOS_JOURNAL) \
		--out reports/node-chaos-report.txt
	$(PYTHON) -m repro diff $(NODE_CHAOS_BASELINE) $(NODE_CHAOS_JOURNAL) \
		--out reports/node-chaos-diff.txt

# Record a chaos-mode G-means run into a journal and render it: the
# full observability loop (journal -> replay -> trace) on one command.
TRACE_JOURNAL ?= reports/chaos-run.jsonl
trace:
	rm -f $(TRACE_JOURNAL)
	REPRO_TASK_FAILURE_PROB=0.05 \
	REPRO_BLOCK_LOSS_PROB=0.02 \
	REPRO_MAX_JOB_RETRIES=3 \
	$(PYTHON) examples/run_with_journal.py $(TRACE_JOURNAL)
	$(PYTHON) -m repro trace $(TRACE_JOURNAL) --gantt --metrics

# Watch a run live: progress rendering on this terminal, the metrics
# endpoint on 127.0.0.1:8787 (curl /metrics, /healthz or /state from
# another shell), task profiling stamped into the journal. Scale the
# run up with LIVE_POINTS to keep it on screen longer.
LIVE_JOURNAL ?= reports/live-run.jsonl
LIVE_POINTS ?= 1500000
live:
	rm -f $(LIVE_JOURNAL)
	REPRO_LIVE=1 \
	REPRO_METRICS_PORT=8787 \
	REPRO_PROFILE_TASKS=1 \
	$(PYTHON) examples/run_with_journal.py $(LIVE_JOURNAL) $(LIVE_POINTS)
	$(PYTHON) -m repro analyze $(LIVE_JOURNAL)

# The journal analytics loop as CI runs it: record a seeded chaos run,
# profile it (skew/stragglers, heap-model audit, cost residuals), then
# gate it against the committed baseline journal. Faults are seeded,
# so the fresh run diffs clean against the baseline unless something
# actually regressed.
ANALYZE_JOURNAL ?= reports/analyze-run.jsonl
BASELINE_JOURNAL ?= benchmarks/baselines/chaos-gmeans-seed7.jsonl
analyze:
	rm -f $(ANALYZE_JOURNAL)
	REPRO_TASK_FAILURE_PROB=0.05 \
	REPRO_BLOCK_LOSS_PROB=0.02 \
	REPRO_MAX_JOB_RETRIES=3 \
	$(PYTHON) examples/run_with_journal.py $(ANALYZE_JOURNAL)
	$(PYTHON) -m repro analyze $(ANALYZE_JOURNAL) --out reports/analyze-report.txt
	$(PYTHON) -m repro diff $(BASELINE_JOURNAL) $(ANALYZE_JOURNAL) \
		--out reports/analyze-diff.txt

# The cross-run registry: record four heterogeneous seeded runs (clean,
# task-failure chaos, node-failure chaos, SLO abort) into one runs
# directory, then render the longitudinal dashboard. Everything the
# dashboard reads is simulated time, so regenerating it reproduces the
# committed reports/dashboard.* byte-for-byte unless behaviour changed.
RUNS_DIR ?= reports/runs
report:
	rm -rf $(RUNS_DIR)
	mkdir -p $(RUNS_DIR)
	$(PYTHON) examples/run_with_journal.py $(RUNS_DIR)/01-clean.jsonl
	REPRO_TASK_FAILURE_PROB=0.05 \
	REPRO_BLOCK_LOSS_PROB=0.02 \
	REPRO_MAX_JOB_RETRIES=3 \
	$(PYTHON) examples/run_with_journal.py $(RUNS_DIR)/02-chaos.jsonl
	REPRO_NODE_FAILURE_PROB=0.02 \
	REPRO_NODE_FAULT_SEED=3 \
	$(PYTHON) examples/run_with_journal.py $(RUNS_DIR)/03-node-chaos.jsonl
	REPRO_SLO=max_k=2 \
	$(PYTHON) examples/run_with_journal.py $(RUNS_DIR)/04-slo-abort.jsonl; \
	test $$? -eq 3
	$(PYTHON) -m repro report $(RUNS_DIR) --out-dir reports \
		--basename dashboard

# The self-driving ablation grid: a seeded baseline plus one run per
# engine flip, importance scored purely from replay accounting, then
# the committed report re-verified against its journals (--check
# replays every journal and recomputes every delta bit-for-bit).
# Exits non-zero if any run fails to reconcile or an infrastructure
# flip moves a simulated metric.
ABLATE_POINTS ?= 3000
ablate:
	$(PYTHON) -m repro ablate --points $(ABLATE_POINTS) \
		--out-dir reports --bench-json BENCH_observability.json \
		> /dev/null
	$(PYTHON) -m repro ablate --check --out-dir reports

# The autotuner: rank the joint (nodes x combiner x split_factor) space
# from one baseline journal via the what-if predictor, validate the
# top-3 by real re-runs, and emit reports/best-config.json. Exits
# non-zero if the winner's predicted-vs-actual relative makespan error
# exceeds the 0.02 budget (the bench_whatif_accuracy bound).
TUNE_POINTS ?= 6000
tune:
	$(PYTHON) -m repro tune --points $(TUNE_POINTS) \
		--out-dir reports --bench-json BENCH_observability.json \
		> /dev/null
	$(PYTHON) -m repro tune --check --out-dir reports

bench-executors:
	$(PYTHON) -m pytest benchmarks/bench_executor_speedup.py -q -s

bench:
	$(PYTHON) -m pytest benchmarks -q -s
